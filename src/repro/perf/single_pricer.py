"""Memoized critical-bid search for the single-task mechanism (Algorithm 3).

The reference search (:func:`repro.core.critical.critical_contribution_single`)
binary-searches a winner's critical contribution by rerunning the *entire*
FPTAS (Algorithm 2) per probe — ~30–50 full O(n⁴/ε) runs per winner.
:class:`SingleTaskPricer` keeps the probes bit-identical while removing the
redundant work between them:

* **Monotone verdict memo** — by Lemma 1 a win at ``q`` proves wins at every
  ``q' ≥ q`` and a loss proves losses below, so repeated probes (and any
  probe at the declared value, which equals the cached original allocation)
  never recompute.
* **Static-subproblem cache** — FPTAS subproblem ``k`` restricts attention
  to the ``k`` cheapest users.  Costs never change during a critical-bid
  search, so the sort order is fixed; when the probed user ranks at ``r``
  (0-based, by ``(cost, user_id)``), every subproblem with ``k ≤ r``
  excludes her entirely and its solution is independent of the probe.  Those
  are solved once, globally, and reused across probes *and* winners.
* **Shared-prefix DP snapshots** — for subproblems with ``k > r`` the DP
  item layers ``0..r-1`` carry the original contributions, so the DP state
  (value row and decision bits) after layer ``r-1`` is snapshotted on the
  first probe and every later probe resumes from it, re-running only layers
  ``r..k-1``.  This is the knapsack analogue of the greedy prefix replay in
  :class:`repro.perf.batch_pricer.BatchPricer`.
* **Cross-winner prefix batching** — those prefix layers are *user-
  independent* (they carry original contributions only: the probed user
  sits at layer ``r``, above every snapshotted layer), so a snapshot taken
  at layer ``m`` remains valid for any later-priced user of rank ``r' ≥
  m``.  :meth:`SingleTaskPricer.price_all` therefore prices winners in
  ascending rank order and each user's first probe *resumes* the previous
  user's snapshots, advancing them ``m → r'`` instead of recomputing
  layers ``0..m`` — the memoized probes batch across winners, not just
  across one winner's bisection.  Splitting a layer run at ``m`` performs
  the identical per-layer float operations, so probes stay bit-identical.
* **Scaled-cost cache** — the integer cost vectors ``⌊c_j/μ_k⌋`` depend
  only on costs and ε; computed once per ``k``.

All DP layers run through the same row kernel as the reference solver
(:func:`repro.core.fptas._dp_rows`), so the float operations — and hence
winner sets, verdicts, and critical bids — are identical.  The pinning
property tests live in ``tests/perf/test_single_pricer.py``.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.critical import DEFAULT_TOLERANCE
from repro.core.errors import CriticalBidError, ValidationError
from repro.core.fptas import (
    DEFAULT_EPSILON,
    MAX_DP_CELLS,
    _EPS,
    _check_dp_cells,
    _dp_rows,
    _reconstruct,
)
from repro.core.frontier_kernel import (
    FrontierState,
    frontier_answer,
    frontier_init,
    frontier_rows,
)
from repro.core.kernels import resolve_kernel
from repro.core.obshooks import emit as _emit
from repro.core.obshooks import span as _span
from repro.core.types import SingleTaskInstance
from repro.obs.profiler import EVENT_BREAKDOWN
from repro.obs.progress import Heartbeat

from .instrumentation import PerfCounters

__all__ = ["SingleTaskPricer", "critical_contribution_single_fast"]

#: Prefix DP snapshots (value row + decision bits per subproblem) are kept
#: only while their total size stays below this many cells; beyond it the
#: pricer falls back to recomputing full subproblems per probe.
DEFAULT_SNAPSHOT_CELLS = 64_000_000


class SingleTaskPricer:
    """Prices single-task winners with memoized, prefix-reused FPTAS probes.

    Args:
        instance: The declared single-task instance.
        epsilon: FPTAS approximation parameter (must match the one used for
            the real allocation, as in the reference search).
        tolerance: Absolute stopping tolerance of the binary search.
        counters: Optional shared :class:`PerfCounters`.
        snapshot_cells: Memory budget (in DP cells) for prefix snapshots.
        tracer: Optional duck-typed :class:`repro.obs.tracing.Tracer`; when
            set, every ``wins(q)`` probe is recorded as a ``critical.probe``
            audit event (with ``cached=True`` when the monotone memo
            answered it without an FPTAS run).
        kernel: ``"vectorized"`` runs every subproblem on the
            Pareto-frontier array kernel (prefix snapshots become
            :class:`repro.core.frontier_kernel.FrontierState` copies);
            ``"reference"`` keeps the dense cost-indexed DP.  Bit-identical
            probes either way; ``None`` defers to
            :func:`repro.core.kernels.resolve_kernel`.

    Unlike the reference function this pricer always prices against the
    FPTAS (no ``allocator`` override); use the reference for custom
    allocators.
    """

    def __init__(
        self,
        instance: SingleTaskInstance,
        epsilon: float = DEFAULT_EPSILON,
        tolerance: float = DEFAULT_TOLERANCE,
        counters: PerfCounters | None = None,
        snapshot_cells: int = DEFAULT_SNAPSHOT_CELLS,
        tracer=None,
        kernel: str | None = None,
    ):
        if epsilon <= 0 or not math.isfinite(epsilon):
            raise ValidationError(f"epsilon must be positive and finite, got {epsilon!r}")
        self.instance = instance
        self.epsilon = float(epsilon)
        self.tolerance = tolerance
        self.counters = counters if counters is not None else PerfCounters()
        self.tracer = tracer
        self.kernel = resolve_kernel(kernel)
        self._probe_seconds = 0.0  # accumulated by _wins under a tracer

        n = instance.n_users
        self._n = n
        self._order = sorted(
            range(n), key=lambda i: (instance.costs[i], instance.user_ids[i])
        )
        self._costs = np.array([instance.costs[i] for i in self._order], dtype=float)
        self._base_contribs = np.array(
            [instance.contributions[i] for i in self._order], dtype=float
        )
        self._sorted_uids = tuple(instance.user_ids[i] for i in self._order)
        self._rank_of = {uid: r for r, uid in enumerate(self._sorted_uids)}

        # Global caches (valid for every probe and every priced user).
        self._scaled_cache: dict[int, tuple[np.ndarray, int]] = {}
        self._static_cache: dict[int, tuple[frozenset[int], int] | None] = {}
        self._static_cells: dict[int, int] = {}
        self._original_selected: frozenset[int] | None = None

        # Prefix snapshots, shared across priced users.  Each entry maps a
        # subproblem size ``k`` to ``(layer, cells, state)``: the DP state
        # after item layers ``[0, layer)`` — all carrying *original*
        # contributions, hence user-independent — its budget charge, and
        # the state itself ((value row, decision bits) under the reference
        # kernel, a FrontierState copy under the vectorized one).
        self._snapshot_budget = snapshot_cells
        self._prefix_user: int | None = None
        self._prefix: dict[
            int, tuple[int, int, tuple[np.ndarray, np.ndarray] | FrontierState]
        ] = {}
        self._prefix_cells = 0
        self._win_bound = math.inf
        self._loss_bound = -math.inf

    # ------------------------------------------------------------------ #
    # FPTAS replication with caches
    # ------------------------------------------------------------------ #

    def _scaled(self, k: int) -> tuple[np.ndarray, int]:
        """Integer scaled costs and ``c_max`` for subproblem ``k`` (cached)."""
        cached = self._scaled_cache.get(k)
        if cached is None:
            mu_k = self.epsilon * float(self._costs[k - 1]) / k
            ints = np.floor(self._costs[:k] / mu_k).astype(np.int64)
            cached = (ints, int(ints.sum()))
            self._scaled_cache[k] = cached
        return cached

    def _solve_static(self, k: int) -> tuple[frozenset[int], int] | None:
        """Subproblem ``k`` over the original contributions (cached forever)."""
        if k in self._static_cache:
            self.counters.fptas_subproblems_cached += 1
            self.counters.fptas_dp_cells_reused += self._static_cells[k]
            return self._static_cache[k]
        before = self.counters.fptas_dp_cells
        solved = self._solve_fresh(k, self._base_contribs, 0)
        self._static_cache[k] = solved
        self._static_cells[k] = self.counters.fptas_dp_cells - before
        return solved

    def _solve_fresh(
        self, k: int, contribs: np.ndarray, rank: int
    ) -> tuple[frozenset[int], int] | None:
        """Run subproblem ``k`` in full, snapshotting the prefix if it fits."""
        if self.kernel == "vectorized":
            return self._solve_fresh_frontier(k, contribs, rank)
        ints, c_max = self._scaled(k)
        _check_dp_cells(k, c_max)
        self.counters.fptas_subproblems += 1
        best = np.full(c_max + 1, -np.inf)
        best[0] = 0.0
        take = np.zeros((k, c_max + 1), dtype=bool)
        if 0 < rank < k:
            _dp_rows(best, take, ints, contribs, 0, rank, counters=self.counters)
            cells = k * (c_max + 1)
            if self._prefix_cells + cells <= self._snapshot_budget:
                self._prefix[k] = (rank, cells, (best.copy(), take))
                self._prefix_cells += cells
            _dp_rows(best, take, ints, contribs, rank, k, counters=self.counters)
        else:
            _dp_rows(best, take, ints, contribs, 0, k, counters=self.counters)
        return self._finish(k, ints, best, take)

    def _solve_fresh_frontier(
        self, k: int, contribs: np.ndarray, rank: int
    ) -> tuple[frozenset[int], int] | None:
        """Vectorized ``_solve_fresh``: frontier arrays, FrontierState snapshot."""
        ints, _c_max = self._scaled(k)
        self.counters.fptas_subproblems += 1
        state = frontier_init()
        if 0 < rank < k:
            frontier_rows(
                state, ints, contribs, 0, rank,
                max_cells=MAX_DP_CELLS, counters=self.counters,
            )
            cells = state.size_cells
            if self._prefix_cells + cells <= self._snapshot_budget:
                self._prefix[k] = (rank, cells, state.copy())
                self._prefix_cells += cells
            frontier_rows(
                state, ints, contribs, rank, k,
                max_cells=MAX_DP_CELLS, counters=self.counters,
            )
        else:
            frontier_rows(
                state, ints, contribs, 0, k,
                max_cells=MAX_DP_CELLS, counters=self.counters,
            )
        return frontier_answer(state, self.instance.requirement, _EPS)

    def _solve_dynamic(
        self, k: int, contribs: np.ndarray, rank: int
    ) -> tuple[frozenset[int], int] | None:
        """Subproblem ``k > rank``: resume from the prefix snapshot if present.

        The snapshot's layer ``m`` satisfies ``m <= rank`` (deeper snapshots
        were dropped by :meth:`_reset_user`).  When ``m < rank`` — the first
        probe of a later-ranked user resuming a predecessor's snapshot —
        layers ``[m, rank)`` carry original contributions only, so the
        advance ``m → rank`` performs exactly the per-layer operations a
        fresh run would, the snapshot is replaced at ``rank``, and the probe
        continues ``rank → k``: bit-identical to an uninterrupted run.
        """
        entry = self._prefix.get(k)
        if entry is None:
            return self._solve_fresh(k, contribs, rank)
        layer, cells, state = entry
        ints, c_max = self._scaled(k)
        self.counters.fptas_subproblems += 1
        if self.kernel == "vectorized":
            resumed = state.copy()
            self.counters.fptas_dp_cells_reused += resumed.cells
            if layer < rank:
                frontier_rows(
                    resumed, ints, contribs, layer, rank,
                    max_cells=MAX_DP_CELLS, counters=self.counters,
                )
                new_cells = resumed.size_cells
                if self._prefix_cells - cells + new_cells <= self._snapshot_budget:
                    self._prefix[k] = (rank, new_cells, resumed.copy())
                    self._prefix_cells += new_cells - cells
                else:
                    del self._prefix[k]
                    self._prefix_cells -= cells
            frontier_rows(
                resumed, ints, contribs, rank, k,
                max_cells=MAX_DP_CELLS, counters=self.counters,
            )
            return frontier_answer(resumed, self.instance.requirement, _EPS)
        prefix_best, take = state
        best = prefix_best.copy()
        self.counters.fptas_dp_cells_reused += layer * (c_max + 1)
        if layer < rank:
            # Advance the shared snapshot to the new user's rank; the take
            # rows [layer, rank) are rewritten with the same values a fresh
            # run would produce (original contributions below rank).
            _dp_rows(best, take, ints, contribs, layer, rank, counters=self.counters)
            self._prefix[k] = (rank, cells, (best.copy(), take))
        # Layers [rank, k) are rewritten in full below; layers [0, rank)
        # keep their decision bits from the snapshot run.
        _dp_rows(best, take, ints, contribs, rank, k, counters=self.counters)
        return self._finish(k, ints, best, take)

    def _finish(
        self, k: int, ints: np.ndarray, best: np.ndarray, take: np.ndarray
    ) -> tuple[frozenset[int], int] | None:
        feasible = np.flatnonzero(best >= self.instance.requirement - _EPS)
        if feasible.size == 0:
            return None
        target = int(feasible[0])
        return frozenset(_reconstruct(take, ints, target)), target

    def _allocate(self, rank: int, q: float) -> frozenset[int] | None:
        """``fptas_min_knapsack(instance.with_contribution(uid, q), ε).selected``,
        bit-identically, or ``None`` when the modified instance is infeasible.
        """
        instance = self.instance
        at_declared = q == float(self._base_contribs[rank])
        if at_declared and self._original_selected is not None:
            self.counters.wins_cache_hits += 1
            return self._original_selected

        if instance.requirement <= _EPS:
            return frozenset()
        # Feasibility check identical to SingleTaskInstance.is_feasible():
        # a python sum over the contribution tuple in original user order.
        orig_idx = self._order[rank]
        total = 0.0
        for i, contribution in enumerate(instance.contributions):
            total += q if i == orig_idx else contribution
        if not (total >= instance.requirement - 1e-12):
            return None

        if at_declared:
            contribs = self._base_contribs
        else:
            contribs = self._base_contribs.copy()
            contribs[rank] = q
        prefix = np.cumsum(contribs)
        first_k = int(np.searchsorted(prefix, instance.requirement - _EPS) + 1)

        best_cost = math.inf
        best_items: frozenset[int] | None = None
        for k in range(first_k, self._n + 1):
            if rank >= k:
                solved = self._solve_static(k)
            else:
                solved = self._solve_dynamic(k, contribs, rank)
            if solved is None:
                continue
            items, _scaled_cost = solved
            # Compare subproblems by ACTUAL cost; the paper's '<=' tie rule
            # is kept: later subproblems win exact ties.
            real_cost = float(self._costs[list(items)].sum())
            if real_cost <= best_cost + _EPS:
                best_cost = real_cost
                best_items = items
        assert best_items is not None, "at least one subproblem is feasible"
        selected = frozenset(self._sorted_uids[i] for i in best_items)
        if at_declared:
            self._original_selected = selected
        return selected

    # ------------------------------------------------------------------ #
    # Memoized monotone search
    # ------------------------------------------------------------------ #

    def _reset_user(self, user_id: int, rank: int) -> None:
        if self._prefix_user != user_id:
            self._prefix_user = user_id
            # Prefix layers carry original contributions only, so snapshots
            # at a layer <= the new user's rank stay valid (and are advanced
            # in place by _solve_dynamic); deeper snapshots include layer
            # ``rank`` itself, which the new user's probes modify, so drop.
            stale = [k for k, (layer, _, _) in self._prefix.items() if layer > rank]
            for k in stale:
                self._prefix_cells -= self._prefix[k][1]
                del self._prefix[k]
            self._win_bound = math.inf
            self._loss_bound = -math.inf

    def _wins(self, user_id: int, rank: int, contribution: float) -> bool:
        """Memoized ``wins(q)``: Lemma-1 monotonicity short-circuits probes."""
        self.counters.wins_evaluations += 1
        if contribution >= self._win_bound:
            self.counters.wins_cache_hits += 1
            self._trace_probe(user_id, contribution, won=True, cached=True)
            return True
        if contribution <= self._loss_bound:
            self.counters.wins_cache_hits += 1
            self._trace_probe(user_id, contribution, won=False, cached=True)
            return False
        t0 = time.perf_counter() if self.tracer is not None else 0.0
        selected = self._allocate(rank, contribution)
        if self.tracer is not None:
            self._probe_seconds += time.perf_counter() - t0
        won = selected is not None and user_id in selected
        if won:
            self._win_bound = min(self._win_bound, contribution)
        else:
            self._loss_bound = max(self._loss_bound, contribution)
        self._trace_probe(user_id, contribution, won=won, cached=False)
        return won

    def _trace_probe(
        self, user_id: int, contribution: float, won: bool, cached: bool
    ) -> None:
        if self.tracer is not None:
            self.tracer.event(
                "critical.probe",
                user_id=user_id,
                value=float(contribution),
                won=won,
                cached=cached,
            )

    def critical(self, user_id: int) -> float:
        """Critical contribution of ``user_id``; mirrors
        :func:`repro.core.critical.critical_contribution_single` probe by
        probe (identical bisection arithmetic, identical verdicts).

        With a tracer attached the search runs inside a ``counterfactual``
        span (matching :meth:`repro.perf.batch_pricer.BatchPricer.price`)
        and emits a ``profile.breakdown`` event splitting its self time
        into ``fptas_probe`` (time inside uncached FPTAS allocations) vs
        ``bisection_overhead`` (memo lookups plus search bookkeeping).

        Raises:
            CriticalBidError: If the user does not win at her declared
                contribution.
        """
        with _span(self.tracer, "counterfactual", user_id=user_id):
            t_start = time.perf_counter() if self.tracer is not None else 0.0
            self._probe_seconds = 0.0
            try:
                return self._critical_inner(user_id)
            finally:
                if self.tracer is not None:
                    total = time.perf_counter() - t_start
                    _emit(
                        self.tracer,
                        EVENT_BREAKDOWN,
                        parts={
                            "fptas_probe": self._probe_seconds,
                            "bisection_overhead": max(
                                0.0, total - self._probe_seconds
                            ),
                        },
                    )

    def _critical_inner(self, user_id: int) -> float:
        rank = self._rank_of[user_id]
        self._reset_user(user_id, rank)
        declared = self.instance.contributions[self.instance.index_of(user_id)]
        if not self._wins(user_id, rank, declared):
            raise CriticalBidError(
                f"user {user_id} does not win at the declared contribution {declared:.6g}"
            )
        if self._wins(user_id, rank, 0.0):
            # The user wins even contributing nothing; the boundary is at zero.
            return 0.0

        low, high = 0.0, max(self.instance.requirement, declared)
        # By monotonicity (Lemma 1), wins(high) holds because high >= declared.
        while high - low > self.tolerance:
            mid = 0.5 * (low + high)
            if self._wins(user_id, rank, mid):
                high = mid
            else:
                low = mid
        return high

    def price_all(self, user_ids) -> dict[int, float]:
        """Critical contributions for a set of winners, keyed in ascending id
        order (the order :class:`repro.core.single_task.SingleTaskMechanism`
        uses).

        Internally winners are priced in ascending *rank* order (by ``(cost,
        user_id)``) so each user's first probe resumes — and advances — the
        previous user's prefix snapshots instead of rebuilding them from
        layer zero (see the class docstring).  Pricing order cannot change
        any price: every probe is bit-identical to an uninterrupted run.

        With a tracer attached, a throttled ``pricing.progress`` heartbeat
        reports done/total/rate/ETA across the winners.
        """
        ordered = sorted(user_ids)
        beat = (
            Heartbeat(
                "pricing",
                total=len(ordered),
                tracer=self.tracer,
                mechanism="single_task",
            )
            if self.tracer is not None and ordered
            else None
        )
        if beat is not None:
            beat.begin()
        computed = {}
        for uid in sorted(ordered, key=lambda u: self._rank_of[u]):
            computed[uid] = self.critical(uid)
            if beat is not None:
                beat.update()
        if beat is not None:
            beat.finish()
        return {uid: computed[uid] for uid in ordered}


def critical_contribution_single_fast(
    instance: SingleTaskInstance,
    user_id: int,
    epsilon: float = DEFAULT_EPSILON,
    tolerance: float = DEFAULT_TOLERANCE,
    counters: PerfCounters | None = None,
    kernel: str | None = None,
) -> float:
    """One-shot convenience wrapper around :class:`SingleTaskPricer`.

    For pricing several winners of the same instance, build one pricer and
    call :meth:`SingleTaskPricer.critical` repeatedly — the static
    subproblem and original-allocation caches then carry across winners.
    """
    return SingleTaskPricer(
        instance, epsilon=epsilon, tolerance=tolerance, counters=counters, kernel=kernel
    ).critical(user_id)
