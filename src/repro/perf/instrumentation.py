"""Lightweight performance instrumentation for the pricing engine.

:class:`PerfCounters` is a plain mutable bag of counters plus per-stage
wall-clock timers.  The core algorithms (``greedy_allocation``,
``fptas_min_knapsack``) accept it duck-typed — they only touch attributes —
so :mod:`repro.core` never imports :mod:`repro.perf` and the dependency
stays one-way.

The counters are what turn "the fast path is faster" from a claim into a
recorded trajectory: ``greedy_prefix_iterations_reused`` proves the
shared-prefix replay actually skipped work, ``fptas_dp_cells_reused`` and
``wins_cache_hits`` do the same for the memoized single-task search, and
``stage_seconds`` splits winner determination from reward determination.
``benchmarks/bench_pricing.py`` dumps all of it to ``BENCH_pricing.json``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import Iterator

__all__ = ["PerfCounters"]


@dataclass
class PerfCounters:
    """Counters and stage timers accumulated across one mechanism run.

    Attributes:
        greedy_iterations: Greedy selection iterations actually executed
            (each costs O(n·t) vector work), across the main run and every
            counterfactual replay.
        greedy_prefix_iterations_reused: Counterfactual iterations *not*
            executed because the shared-prefix invariant let the replay
            resume from a snapshot (the speedup evidence for Algorithm 5).
        counterfactual_runs: Number of counterfactual prices computed.
        fptas_subproblems: FPTAS DP subproblems solved.
        fptas_subproblems_cached: Subproblems answered from the
            static-subproblem cache without running the DP.
        fptas_dp_cells: DP cells computed (rows × table width).
        fptas_dp_cells_reused: DP cells skipped via cached subproblems and
            shared-prefix DP snapshots.
        wins_evaluations: ``wins(q)`` probes asked by critical-bid searches.
        wins_cache_hits: Probes answered from the monotone verdict memo or
            the original-allocation cache instead of a fresh FPTAS run.
        greedy_rows_recomputed: Rows whose capped gain the vectorized greedy
            actually recomputed (the incremental kernel's work metric; the
            dense kernel rescans ``n`` rows per iteration).
        fptas_frontier_states: Surviving Pareto-frontier states summed over
            layers (the vectorized DP's footprint; compare against
            ``fptas_dp_cells`` to see the pruning ratio).
        pricing_early_exits: Counterfactual replays terminated by the
            proven early-exit certificate (``method="threshold"`` only —
            the replay's remaining iterations were shown to be incapable of
            changing the price; see
            :class:`repro.perf.batch_pricer.BatchPricer`).
        stage_seconds: Wall-clock per named stage (e.g.
            ``winner_determination``, ``reward_determination``).
    """

    greedy_iterations: int = 0
    greedy_prefix_iterations_reused: int = 0
    counterfactual_runs: int = 0
    fptas_subproblems: int = 0
    fptas_subproblems_cached: int = 0
    fptas_dp_cells: int = 0
    fptas_dp_cells_reused: int = 0
    wins_evaluations: int = 0
    wins_cache_hits: int = 0
    greedy_rows_recomputed: int = 0
    fptas_frontier_states: int = 0
    pricing_early_exits: int = 0
    stage_seconds: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a named stage; re-entering the same name accumulates."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + elapsed

    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Fold another counter set into this one (used by worker fan-out)."""
        for f in fields(self):
            if f.name == "stage_seconds":
                for stage, seconds in other.stage_seconds.items():
                    self.stage_seconds[stage] = (
                        self.stage_seconds.get(stage, 0.0) + seconds
                    )
            else:
                setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def to_dict(self) -> dict:
        """JSON-ready snapshot (what the benchmark records)."""
        out: dict = {
            f.name: getattr(self, f.name) for f in fields(self) if f.name != "stage_seconds"
        }
        out["stage_seconds"] = dict(self.stage_seconds)
        return out
