"""Performance layer: batch counterfactual pricing + instrumentation.

This package speeds up the *reward determination* stage of both mechanisms
without changing a single output bit:

* :class:`BatchPricer` — multi-task critical bids via shared-prefix greedy
  replay (Algorithm 5 without the per-winner instance copies and full
  reruns).
* :class:`SingleTaskPricer` / :func:`critical_contribution_single_fast` —
  single-task critical bids via memoized monotone FPTAS probes (static
  subproblem cache, shared-prefix DP snapshots, Lemma-1 verdict memo).
* :class:`PerfCounters` — counters and stage timers proving where the
  savings come from; surfaced on mechanism outcomes and dumped to
  ``BENCH_pricing.json`` by ``benchmarks/bench_pricing.py``.

The dependency is strictly one-way: :mod:`repro.core` never imports
:mod:`repro.perf` (the mechanisms lazy-import it inside ``run()``), so the
core algorithms remain usable without this package.
"""

from .batch_pricer import BatchPricer
from .instrumentation import PerfCounters
from .single_pricer import (
    SingleTaskPricer,
    critical_contribution_single_fast,
)

__all__ = [
    "BatchPricer",
    "PerfCounters",
    "SingleTaskPricer",
    "critical_contribution_single_fast",
]
