"""Workload generation: Tables II/III parameters and instance builders."""

from .config import (
    TABLE3_SETTING_1,
    TABLE3_SETTING_2,
    SimulationConfig,
    table2_defaults,
)
from .generator import (
    GeneratedMultiTask,
    GeneratedSingleTask,
    RepairReport,
    WorkloadGenerator,
)
from .sampling import sample_costs, sample_task_set_size

__all__ = [
    "SimulationConfig",
    "table2_defaults",
    "TABLE3_SETTING_1",
    "TABLE3_SETTING_2",
    "WorkloadGenerator",
    "GeneratedSingleTask",
    "GeneratedMultiTask",
    "RepairReport",
    "sample_costs",
    "sample_task_set_size",
]
