"""Seeded sampling primitives for workload generation (paper, §IV-A).

Costs follow the paper's normal distribution (mean 15, variance 5) truncated
away from zero — a cost must be positive for the mechanisms' validation and
for the contribution-cost ratio to be defined.  Task-set sizes are uniform
integers in the configured range.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ValidationError
from .config import SimulationConfig

__all__ = ["sample_costs", "sample_task_set_size"]

_MAX_REJECTION_ROUNDS = 100


def sample_costs(config: SimulationConfig, n: int, rng: np.random.Generator) -> np.ndarray:
    """Draw ``n`` positive costs from the truncated normal cost model.

    Rejection-samples the normal until all draws clear ``config.min_cost``;
    with the paper's parameters (mean 15, std ≈ 2.24) rejections are
    vanishingly rare, but the loop keeps the sampler correct for any
    configuration.  As a final guard the values are clipped (which only
    triggers for pathological configs where rejection cannot converge).
    """
    if n < 0:
        raise ValidationError(f"n must be >= 0, got {n!r}")
    costs = rng.normal(config.cost_mean, config.cost_std, size=n)
    for _ in range(_MAX_REJECTION_ROUNDS):
        bad = costs < config.min_cost
        if not bad.any():
            break
        costs[bad] = rng.normal(config.cost_mean, config.cost_std, size=int(bad.sum()))
    return np.clip(costs, config.min_cost, None)


def sample_task_set_size(config: SimulationConfig, rng: np.random.Generator) -> int:
    """Draw one task-set size from U[low, high] (Table II: [10, 20])."""
    low, high = config.tasks_per_user
    return int(rng.integers(low, high + 1))
