"""Simulation configuration (paper, Tables II and III).

:class:`SimulationConfig` carries the paper's default parameters:

====================================  =========
PoS requirement ``T``                 0.8
Reward scaling factor ``α``           10
Tasks per user                        U[10, 20]
Mean of costs                         15
Variance of costs                     5
====================================  =========

plus the two multi-task sweeps of Table III (users ∈ [10, 100] at 15 tasks;
30 users at tasks ∈ [10, 50]).  Experiment drivers start from
:func:`table2_defaults` and override what their sweep varies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..core.errors import ValidationError

__all__ = ["SimulationConfig", "table2_defaults", "TABLE3_SETTING_1", "TABLE3_SETTING_2"]


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Workload-generation parameters.

    Attributes:
        pos_requirement: Per-task PoS requirement ``T`` (Table II: 0.8).
        alpha: Reward scaling factor ``α`` (Table II: 10).
        tasks_per_user: Inclusive range for a user's task-set size
            (Table II: [10, 20]).
        cost_mean: Mean of the normal cost distribution (Table II: 15).
        cost_variance: Variance of the cost distribution (Table II: 5).
        min_cost: Truncation floor for sampled costs (costs must be
            positive; the normal tail is clipped here).
        pos_horizon: Number of future time slots a user's PoS covers: her
            PoS for a task is the probability she *reaches* the task's cell
            within this many Markov steps.  ``1`` is the paper's literal
            next-slot reading, under which several of its own experimental
            settings (e.g. 10 users, 15 tasks, T = 0.8) are mathematically
            infeasible — a user's one-step probabilities sum to at most 1
            across her whole bundle.  The default of 5 models a sensing
            campaign spanning a short window, calibrated so the Table III
            sweeps are naturally feasible at all but the thinnest market
            sizes (see DESIGN.md).
        feasibility_margin: The generator repairs a task whose aggregate
            contribution is below ``margin × Q_j`` (1.0 disables headroom).
        repair: Feasibility-repair strategy: ``"boost"`` scales
            contributions up, ``"drop"`` removes uncoverable tasks,
            ``"none"`` leaves the instance as generated.
    """

    pos_requirement: float = 0.8
    alpha: float = 10.0
    tasks_per_user: tuple[int, int] = (10, 20)
    cost_mean: float = 15.0
    cost_variance: float = 5.0
    min_cost: float = 0.5
    pos_horizon: int = 5
    feasibility_margin: float = 1.05
    repair: str = "boost"

    def __post_init__(self) -> None:
        if not (0.0 < self.pos_requirement < 1.0):
            raise ValidationError(
                f"pos_requirement must be in (0, 1), got {self.pos_requirement!r}"
            )
        if self.alpha <= 0:
            raise ValidationError(f"alpha must be positive, got {self.alpha!r}")
        low, high = self.tasks_per_user
        if not (1 <= low <= high):
            raise ValidationError(f"tasks_per_user must satisfy 1 <= low <= high: {self.tasks_per_user!r}")
        if self.cost_mean <= 0 or self.cost_variance < 0:
            raise ValidationError("cost_mean must be > 0 and cost_variance >= 0")
        if self.min_cost <= 0:
            raise ValidationError(f"min_cost must be positive, got {self.min_cost!r}")
        if self.pos_horizon < 1:
            raise ValidationError(f"pos_horizon must be >= 1, got {self.pos_horizon!r}")
        if self.feasibility_margin < 1.0:
            raise ValidationError("feasibility_margin must be >= 1.0")
        if self.repair not in ("boost", "drop", "none"):
            raise ValidationError(f"unknown repair strategy {self.repair!r}")

    @property
    def cost_std(self) -> float:
        return math.sqrt(self.cost_variance)

    def with_requirement(self, pos_requirement: float) -> "SimulationConfig":
        """A copy with a different PoS requirement (Figures 8–9 sweeps)."""
        return replace(self, pos_requirement=pos_requirement)


def table2_defaults() -> SimulationConfig:
    """The paper's Table II default parameters."""
    return SimulationConfig()


#: Table III, setting 1: n ∈ [10, 100] users, 15 tasks, cost mean 15, T = 0.8.
TABLE3_SETTING_1 = {
    "n_users_range": (10, 100),
    "n_tasks": 15,
    "config": table2_defaults(),
}

#: Table III, setting 2: 30 users, tasks ∈ [10, 50], cost mean 15, T = 0.8.
TABLE3_SETTING_2 = {
    "n_users": 30,
    "n_tasks_range": (10, 50),
    "config": table2_defaults(),
}
