"""Chunked streaming instance generation with bounded peak memory.

A million-user auction instance cannot be built the batch way — fit the
whole fleet, hold every taxi's ranked profile, materialise every bid
list, *then* assemble — without peak memory proportional to the fleet.
:func:`stream_instances` turns generation into a pipeline over
:class:`~repro.mobility.markov_kernel.SequenceChunk` batches: each chunk
is fitted, ranked against one fixed task pool, and emitted as a
:class:`StreamedChunk` of ready :class:`~repro.core.types.UserType` bids
before the next chunk's traces are even touched.  Peak memory is
proportional to the *chunk*, not the fleet — pinned by the
bounded-memory test in ``tests/workload/test_stream.py`` and
demonstrated at 10^6 users by ``benchmarks/bench_workload.py``.

Determinism and the draw-order contract
---------------------------------------
Chunk ``i`` draws from ``default_rng(SeedSequence(seed, spawn_key=(i,)))``
— chunks are independent of each other and of chunk order, so a resumed
or re-chunked-elsewhere stream reproduces any chunk in isolation.  Within
a chunk both kernels consume the stream identically: one scalar-equivalent
``integers(low, high+1)`` task-set-size draw per *fitted* taxi (in
ascending taxi order, whether or not the taxi overlaps the pool), then
one ``sample_costs`` batch for the chunk's emitted users.  The
``kernel="reference"`` path retains the per-taxi loop as the parity
oracle.

Feasibility repair is intentionally **not** applied here: boosting or
dropping needs each task's *global* coverage, which a bounded-memory
stream never holds.  Callers that need repaired instances use
``WorkloadGenerator.multi_task_instance``; streaming consumers (the
experiment pool, the future online-arrival service) treat the pool as
given and the bids as raw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..core.errors import ValidationError
from ..core.kernels import resolve_workload_kernel
from ..core.obshooks import span
from ..core.types import UserType
from ..mobility.markov import MarkovMobilityModel
from ..mobility.markov_kernel import SequenceChunk, fit_fleet, fleet_profiles
from ..obs.progress import Heartbeat
from .config import SimulationConfig, table2_defaults
from .sampling import sample_costs, sample_task_set_size

__all__ = ["StreamedChunk", "stream_instances"]


@dataclass(frozen=True)
class StreamedChunk:
    """One chunk's worth of generated bids against the stream's task pool."""

    chunk_index: int
    first_user_id: int
    task_cells: tuple[int, ...]
    users: tuple[UserType, ...]
    taxi_of_user: dict[int, int]
    #: Fitted taxis whose ranked predictions missed the pool entirely.
    skipped_taxis: int

    @property
    def n_users(self) -> int:
        return len(self.users)


def _chunk_rng(seed: int, chunk_index: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(chunk_index,)))


def _pool_from_profiles(profiles, n_tasks: int) -> tuple[int, ...]:
    cells, _ = profiles.popular_cells()
    return tuple(cells[:n_tasks].tolist())


def _chunk_vectorized(
    chunk: SequenceChunk,
    pool: tuple[int, ...],
    n_tasks: int,
    config: SimulationConfig,
    smoothing: str,
    rng: np.random.Generator,
    first_user_id: int,
    chunk_index: int,
    max_keep: int,
) -> tuple[StreamedChunk, tuple[int, ...]]:
    profiles = fleet_profiles(
        fit_fleet(chunk), smoothing, config.pos_horizon, max_keep=max_keep
    )
    if pool is None:
        pool = _pool_from_profiles(profiles, n_tasks)
    n = profiles.n_taxis
    ks = rng.integers(config.tasks_per_user[0], config.tasks_per_user[1] + 1, size=n)
    if n == 0:
        return (
            StreamedChunk(chunk_index, first_user_id, pool, (), {}, 0),
            pool,
        )

    pool_arr = np.asarray(pool, dtype=np.int64)
    cmin = int(min(int(profiles.ranked_cells.min()), int(pool_arr.min())))
    cmax = int(max(int(profiles.ranked_cells.max()), int(pool_arr.max())))
    in_pool = np.zeros(cmax - cmin + 1, dtype=bool)
    in_pool[pool_arr - cmin] = True

    lens_all = np.diff(profiles.ranked_indptr)
    hits = in_pool[profiles.ranked_cells - cmin]
    row_of_flat = np.repeat(np.arange(n, dtype=np.int64), lens_all)
    inclusive = np.cumsum(hits)
    before = inclusive - hits
    base = before[profiles.ranked_indptr[:-1]]
    hit_rank = before - np.repeat(base, lens_all)
    select = hits & (hit_rank < np.repeat(ks, lens_all))
    b_row = row_of_flat[select]
    b_cell = profiles.ranked_cells[select].tolist()
    b_pos = profiles.ranked_pos[select].tolist()

    per_row = np.bincount(b_row, minlength=n)
    # A taxi is emitted when her ranked list overlaps the pool at all, even
    # if the k-truncation leaves the bundle empty — matching the reference.
    emit = np.bincount(row_of_flat[hits], minlength=n) > 0
    n_users = int(emit.sum())
    costs = sample_costs(config, n_users, rng).tolist()
    off = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(per_row, out=off[1:])
    off_l = off.tolist()
    taxi_l = profiles.taxi_ids.tolist()

    users: list[UserType] = []
    taxi_of_user: dict[int, int] = {}
    uid = first_user_id
    for row in np.nonzero(emit)[0].tolist():
        a, b = off_l[row], off_l[row + 1]
        users.append(
            UserType(uid, cost=costs[uid - first_user_id], pos=dict(zip(b_cell[a:b], b_pos[a:b])))
        )
        taxi_of_user[uid] = taxi_l[row]
        uid += 1
    return (
        StreamedChunk(
            chunk_index, first_user_id, pool, tuple(users), taxi_of_user, n - n_users
        ),
        pool,
    )


def _chunk_reference(
    chunk: SequenceChunk,
    pool: tuple[int, ...],
    n_tasks: int,
    config: SimulationConfig,
    smoothing: str,
    rng: np.random.Generator,
    first_user_id: int,
    chunk_index: int,
    max_keep: int,
) -> tuple[StreamedChunk, tuple[int, ...]]:
    sequences = {
        int(chunk.taxi_ids[i]): chunk.sequence_of(i).tolist()
        for i in range(chunk.n_taxis)
    }
    model = MarkovMobilityModel.from_sequences(
        sequences, smoothing=smoothing, kernel="reference"
    )
    ranked: dict[int, list[tuple[int, float]]] = {}
    for taxi_id in model.taxi_ids:
        taxi_model = model.model_for(taxi_id)
        visits = taxi_model.counts.sum(axis=1)
        current = taxi_model.locations[int(visits.argmax())]
        profile = model.reach_profile(taxi_id, current, config.pos_horizon)
        pairs = sorted(profile.items(), key=lambda item: (-item[1], item[0]))
        ranked[taxi_id] = pairs[:max_keep]
    if pool is None:
        counts: dict[int, int] = {}
        for taxi_id in model.taxi_ids:
            for cell, _ in ranked[taxi_id]:
                counts[cell] = counts.get(cell, 0) + 1
        popular = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        pool = tuple(cell for cell, _ in popular[:n_tasks])
    pool_set = set(pool)

    bundles: list[tuple[int, dict[int, float]]] = []
    skipped = 0
    for taxi_id in model.taxi_ids:
        k = sample_task_set_size(config, rng)
        in_pool = [(cell, p) for cell, p in ranked[taxi_id] if cell in pool_set]
        if not in_pool:
            skipped += 1
            continue
        bundles.append((taxi_id, dict(in_pool[:k])))
    costs = sample_costs(config, len(bundles), rng)
    users: list[UserType] = []
    taxi_of_user: dict[int, int] = {}
    for offset, ((taxi_id, bundle), cost) in enumerate(zip(bundles, costs)):
        uid = first_user_id + offset
        users.append(UserType(uid, cost=float(cost), pos=bundle))
        taxi_of_user[uid] = taxi_id
    return (
        StreamedChunk(
            chunk_index, first_user_id, pool, tuple(users), taxi_of_user, skipped
        ),
        pool,
    )


def stream_instances(
    chunks: Iterable[SequenceChunk],
    n_tasks: int,
    config: SimulationConfig | None = None,
    seed: int = 0,
    smoothing: str = "laplace",
    pool: Sequence[int] | None = None,
    kernel: str | None = None,
    tracer=None,
    console=None,
) -> Iterator[StreamedChunk]:
    """Generate auction bids chunk by chunk, with bounded peak memory.

    Args:
        chunks: Source of per-taxi trace batches; consumed lazily, one at
            a time.  Taxi ids must not repeat across chunks.
        n_tasks: Pool size when ``pool`` is derived (from the first
            chunk's most popular predicted destinations).
        config: Simulation parameters (defaults to Table II).
        seed: Stream seed; chunk ``i`` uses
            ``SeedSequence(seed, spawn_key=(i,))``.
        smoothing: Markov smoothing variant for the per-chunk fits.
        pool: Optional fixed task-cell pool; ``None`` derives it from the
            first chunk and reuses it for every later chunk.
        kernel: ``"vectorized"`` (array pipeline) or ``"reference"``
            (per-taxi loops, the parity oracle); ``None`` resolves via
            :func:`repro.core.kernels.resolve_workload_kernel`.
        tracer: Duck-typed tracer; each chunk runs in a
            ``workload.stream_chunk`` span and a ``generation.progress``
            heartbeat tracks emitted users.
        console: Optional console callback for the heartbeat line.

    Yields:
        One :class:`StreamedChunk` per input chunk (possibly with zero
        users), user ids globally contiguous from 0.
    """
    if n_tasks <= 0:
        raise ValidationError(f"n_tasks must be positive, got {n_tasks!r}")
    config = config or table2_defaults()
    resolved = resolve_workload_kernel(kernel)
    build = _chunk_vectorized if resolved == "vectorized" else _chunk_reference
    max_keep = max(config.tasks_per_user[1], 20)
    fixed_pool = tuple(int(c) for c in pool) if pool is not None else None
    beat = (
        Heartbeat("generation", tracer=tracer, console=console, kernel=resolved)
        if tracer is not None or console is not None
        else None
    )
    next_user_id = 0
    for chunk_index, chunk in enumerate(chunks):
        rng = _chunk_rng(seed, chunk_index)
        with span(
            tracer,
            "workload.stream_chunk",
            chunk=chunk_index,
            n_taxis=chunk.n_taxis,
            kernel=resolved,
        ):
            result, fixed_pool = build(
                chunk,
                fixed_pool,
                n_tasks,
                config,
                smoothing,
                rng,
                next_user_id,
                chunk_index,
                max_keep,
            )
        next_user_id += result.n_users
        if beat is not None:
            beat.update(result.n_users, chunk=chunk_index)
        yield result
    if beat is not None:
        beat.finish()
