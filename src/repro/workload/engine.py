"""Vectorized auction-instance assembly (the workload engine, layer 2).

Array re-implementations of ``WorkloadGenerator.single_task_instance`` and
``multi_task_instance`` that consume the batched
:class:`~repro.mobility.markov_kernel.FleetProfiles` instead of the
per-taxi ``_ranked`` dicts.  The contract is **bit-identical output**: the
same :class:`~repro.core.types.SingleTaskInstance` /
:class:`~repro.core.types.AuctionInstance`, the same ``taxi_of_user``
maps, the same :class:`~repro.workload.generator.RepairReport` — enforced
by the hypothesis parity suite in ``tests/perf/test_workload_parity.py``.

RNG-order contract
------------------
Parity holds because both kernels consume the *same generator stream in
the same order*:

* **single-task** — ``choice(top_pool)``, then
  ``choice(len(candidates), size=n_users, replace=False)``, then the
  ``sample_costs`` batch;
* **multi-task** — ``permutation(all_taxis)``, then one scalar
  ``integers(low, high+1)`` per **attempted** taxi (failed attempts —
  empty bundles — still consume a draw before the reserve taxi is
  tried), then the ``sample_costs`` batch.  Batched ``integers`` draws
  consume the bit stream exactly like the equivalent sequence of scalar
  draws, so the vectorized kernel simulates the RNG-free part of the
  assignment walk first (pool overlap is a pure set property), counts
  the attempts, and replays all ``k`` draws as one call.

Float-parity rules
------------------
``math.log1p``/``math.expm1`` differ from their numpy counterparts in the
last ulp, so the PoS↔contribution transforms stay *scalar* (applied via
:func:`pos_to_contribution_vec` — vectorized clamping around a scalar
``math.log1p`` map), and left-fold sums are reproduced with
``np.cumsum(a)[-1]`` which matches the builtin ``sum`` bit-for-bit
(unlike numpy's pairwise ``np.sum``).  ``np.add.at`` accumulates
sequentially in index order, matching the reference's per-cell
``coverage[cell] += q`` dict folds.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from ..core.errors import ValidationError
from ..core.transforms import MAX_POS, MIN_POS, pos_to_contribution
from ..core.types import AuctionInstance, SingleTaskInstance, Task, UserType
from ..mobility.markov_kernel import FleetProfiles
from .config import SimulationConfig
from .sampling import sample_costs

if TYPE_CHECKING:  # pragma: no cover - import cycle is runtime-lazy
    from .generator import GeneratedMultiTask, GeneratedSingleTask

__all__ = [
    "pos_to_contribution_vec",
    "contribution_to_pos_vec",
    "single_task_vectorized",
    "multi_task_vectorized",
]


def _seq_sum(values: np.ndarray) -> float:
    """Left-fold sum: bit-identical to ``sum(values.tolist())``."""
    if values.size == 0:
        return 0.0
    return float(np.cumsum(values)[-1])


def pos_to_contribution_vec(pos: np.ndarray) -> np.ndarray:
    """Elementwise :func:`~repro.core.transforms.pos_to_contribution`.

    Bit-identical to the scalar loop: clamping is vectorized (exact
    comparisons), but the log1p itself is ``math.log1p`` per element —
    ``np.log1p`` disagrees in the last ulp on this host.
    """
    pos = np.asarray(pos, dtype=np.float64)
    if not bool(np.isfinite(pos).all()):
        raise ValueError("PoS values must be finite")
    clamped = np.clip(pos, MIN_POS, MAX_POS)
    out = np.fromiter(
        map(math.log1p, (-clamped).tolist()), dtype=np.float64, count=clamped.size
    )
    np.negative(out, out=out)
    return out


def contribution_to_pos_vec(contributions: np.ndarray) -> np.ndarray:
    """Elementwise :func:`~repro.core.transforms.contribution_to_pos` (scalar expm1)."""
    contributions = np.asarray(contributions, dtype=np.float64)
    if contributions.size and bool((contributions < 0).any()):
        raise ValueError("contributions must be non-negative")
    out = np.fromiter(
        map(math.expm1, (-contributions).tolist()),
        dtype=np.float64,
        count=contributions.size,
    )
    np.negative(out, out=out)
    return out


def _cell_luts(
    profiles: FleetProfiles, pool: np.ndarray
) -> tuple[int, np.ndarray, np.ndarray]:
    """``(cmin, in_pool, pool_slot)`` lookup tables over the cell-id range."""
    cmin = int(min(int(profiles.ranked_cells.min()), int(pool.min())))
    cmax = int(max(int(profiles.ranked_cells.max()), int(pool.max())))
    span = cmax - cmin + 1
    in_pool = np.zeros(span, dtype=bool)
    in_pool[pool - cmin] = True
    pool_slot = np.full(span, -1, dtype=np.int64)
    pool_slot[pool - cmin] = np.arange(pool.size, dtype=np.int64)
    return cmin, in_pool, pool_slot


# --------------------------------------------------------------------- #
# Single task
# --------------------------------------------------------------------- #


def single_task_vectorized(
    profiles: FleetProfiles,
    config: SimulationConfig,
    n_users: int,
    requirement: float | None,
    rng: np.random.Generator,
) -> "GeneratedSingleTask":
    """Array path of ``WorkloadGenerator.single_task_instance``."""
    from .generator import _MAX_BOOSTED_POS, GeneratedSingleTask, RepairReport

    pos_requirement = config.pos_requirement if requirement is None else requirement
    cells, _ = profiles.popular_cells()
    top_pool = cells[:5].tolist()
    task_cell = int(rng.choice(top_pool))

    values, present = profiles.reach_at_cell(task_cell)
    mask = present & (values > 0.0)
    cand_rows = np.nonzero(mask)[0]
    if cand_rows.size < n_users:
        raise ValidationError(
            f"only {cand_rows.size} taxis can serve cell {task_cell}; "
            f"need {n_users} — enlarge the fleet"
        )
    chosen_idx = rng.choice(int(cand_rows.size), size=n_users, replace=False)
    chosen_rows = cand_rows[chosen_idx]
    chosen_pos = values[chosen_rows]
    costs = sample_costs(config, n_users, rng)

    q_requirement = pos_to_contribution(pos_requirement)
    contributions = pos_to_contribution_vec(chosen_pos)
    repair = RepairReport()
    total = _seq_sum(contributions)
    needed = config.feasibility_margin * q_requirement
    if total < needed and config.repair == "boost":
        lam = needed / total if total > 0 else float("inf")
        cap = pos_to_contribution(_MAX_BOOSTED_POS)
        boosted = np.minimum(contributions * lam, cap)
        if _seq_sum(boosted) >= q_requirement:
            contributions = boosted
            repair = RepairReport(boosted_tasks={task_cell: lam})
    instance = SingleTaskInstance(
        requirement=q_requirement,
        user_ids=tuple(range(n_users)),
        costs=tuple(costs.tolist()),
        contributions=tuple(contributions.tolist()),
    )
    taxi_of_user = {
        i: taxi for i, taxi in enumerate(profiles.taxi_ids[chosen_rows].tolist())
    }
    return GeneratedSingleTask(
        instance=instance,
        task_cell=task_cell,
        taxi_of_user=taxi_of_user,
        repair=repair,
    )


# --------------------------------------------------------------------- #
# Multi task
# --------------------------------------------------------------------- #


def multi_task_vectorized(
    profiles: FleetProfiles,
    config: SimulationConfig,
    n_users: int,
    n_tasks: int,
    requirement: float | None,
    rng: np.random.Generator,
) -> "GeneratedMultiTask":
    """Array path of ``WorkloadGenerator.multi_task_instance``."""
    from .generator import _MAX_BOOSTED_POS, GeneratedMultiTask, RepairReport

    pos_requirement = config.pos_requirement if requirement is None else requirement
    n_fleet = profiles.n_taxis
    if n_fleet < n_users:
        raise ValidationError(f"fleet has {n_fleet} taxis; need {n_users} users")
    perm = rng.permutation(profiles.taxi_ids)
    rows_perm = np.searchsorted(profiles.taxi_ids, perm)

    pool_cells, _ = profiles.popular_cells(rows_perm[:n_users])
    pool_arr = pool_cells[:n_tasks]
    pool = pool_arr.tolist()
    cmin, in_pool, pool_slot = _cell_luts(profiles, pool_arr)

    # Pool overlap is RNG-free: a taxi yields a bundle iff any ranked
    # candidate lies in the pool.  Simulate the assignment walk first,
    # then replay every attempt's task-set-size draw in one batch.
    flags_all = in_pool[profiles.ranked_cells - cmin]
    row_of_flat = np.repeat(
        np.arange(n_fleet, dtype=np.int64), np.diff(profiles.ranked_indptr)
    )
    overlap = (np.bincount(row_of_flat[flags_all], minlength=n_fleet) > 0).tolist()

    rows_list = rows_perm.tolist()
    attempt_count = 0
    users_rows: list[int] = []
    user_attempt: list[int] = []
    resampled = 0
    ptr = n_users
    for i in range(n_users):
        row = rows_list[i]
        attempt_count += 1
        while not overlap[row]:
            resampled += 1
            if ptr >= n_fleet:
                raise ValidationError(
                    "could not find enough taxis whose predictions overlap the task pool"
                )
            row = rows_list[ptr]
            ptr += 1
            attempt_count += 1
        users_rows.append(row)
        user_attempt.append(attempt_count - 1)
    low, high = config.tasks_per_user
    ks = rng.integers(low, high + 1, size=attempt_count)
    ks_u = ks[np.asarray(user_attempt, dtype=np.int64)]

    # Each user's bundle: the first k pool-hits of her ranked list.
    rows_u = np.asarray(users_rows, dtype=np.int64)
    starts = profiles.ranked_indptr[rows_u]
    lens = profiles.ranked_indptr[rows_u + 1] - starts
    uo = np.zeros(n_users + 1, dtype=np.int64)
    np.cumsum(lens, out=uo[1:])
    total_entries = int(uo[-1])
    flat = np.arange(total_entries, dtype=np.int64) + np.repeat(starts - uo[:-1], lens)
    cells_f = profiles.ranked_cells[flat]
    pos_f = profiles.ranked_pos[flat]
    hits = in_pool[cells_f - cmin]
    inclusive = np.cumsum(hits)
    before = inclusive - hits
    hit_rank = before - np.repeat(before[uo[:-1]], lens)
    select = hits & (hit_rank < np.repeat(ks_u, lens))
    b_user = np.repeat(np.arange(n_users, dtype=np.int64), lens)[select]
    b_cell = cells_f[select]
    b_pos = pos_f[select].copy()

    # Aggregate coverage: np.add.at folds sequentially in flat (user-major)
    # order — the same left fold as the reference's coverage dict.
    q_requirement = pos_to_contribution(pos_requirement)
    q_f = pos_to_contribution_vec(b_pos)
    slot_f = pool_slot[b_cell - cmin]
    coverage = np.zeros(len(pool), dtype=np.float64)
    np.add.at(coverage, slot_f, q_f)

    boosted: dict[int, float] = {}
    dropped: list[int] = []
    needed = config.feasibility_margin * q_requirement
    for j, cell in enumerate(pool):
        cov = float(coverage[j])
        if cov >= needed:
            continue
        if config.repair == "none":
            continue
        if config.repair == "boost" and cov > 0:
            lam = needed / cov
            sel = np.nonzero(slot_f == j)[0]
            p_new = np.minimum(
                contribution_to_pos_vec(q_f[sel] * lam), _MAX_BOOSTED_POS
            )
            b_pos[sel] = p_new
            if _seq_sum(pos_to_contribution_vec(p_new)) >= q_requirement:
                boosted[cell] = float(lam)
                continue
        dropped.append(cell)

    kept_cells = tuple(cell for cell in pool if cell not in set(dropped))
    if not kept_cells:
        raise ValidationError("every task was dropped during feasibility repair")
    tasks = [Task(int(cell), pos_requirement) for cell in kept_cells]
    costs = sample_costs(config, n_users, rng)

    span = in_pool.size
    kept_lut = np.zeros(span, dtype=bool)
    kept_lut[np.asarray(kept_cells, dtype=np.int64) - cmin] = True
    keep_entry = kept_lut[b_cell - cmin]
    ku = b_user[keep_entry]
    kc = b_cell[keep_entry].tolist()
    kp = b_pos[keep_entry].tolist()
    per_user = np.bincount(ku, minlength=n_users)
    off = np.zeros(n_users + 1, dtype=np.int64)
    np.cumsum(per_user, out=off[1:])
    off_l = off.tolist()
    costs_l = costs.tolist()
    taxi_l = profiles.taxi_ids[rows_u].tolist()

    user_types = []
    taxi_of_user: dict[int, int] = {}
    for i in range(n_users):
        a, b = off_l[i], off_l[i + 1]
        if a == b:
            continue  # the user's entire bundle was dropped
        user_types.append(
            UserType(i, cost=costs_l[i], pos=dict(zip(kc[a:b], kp[a:b])))
        )
        taxi_of_user[i] = taxi_l[i]
    instance = AuctionInstance(tasks, user_types)
    return GeneratedMultiTask(
        instance=instance,
        task_cells=kept_cells,
        taxi_of_user=taxi_of_user,
        repair=RepairReport(
            boosted_tasks=boosted,
            dropped_tasks=tuple(dropped),
            resampled_users=resampled,
        ),
    )
