"""Auction-instance generation from a learned mobility model (paper, §IV-A).

The paper builds its simulation workload as follows: each taxi gets a random
starting location; the locations it will reach with high probability in the
next time slot become its task set (size uniform in [10, 20]); the predicted
transition probabilities are its PoS values; costs are normal (mean 15,
variance 5); every task carries the same PoS requirement ``T``.

:class:`WorkloadGenerator` reproduces that pipeline on top of a fitted
:class:`~repro.mobility.markov.MarkovMobilityModel`:

* **single-task instances** (Figure 5(a), 7, 8, 9): a popular location is
  fixed as *the* task, and users are taxis likely to reach it;
* **multi-task instances** (Figures 5(b), 5(c), 6, 7, 8, 9): the task pool
  is the ``t`` most popular predicted destinations among the sampled users,
  and each user's bundle is her top predictions inside the pool.

Feasibility repair
------------------
The paper implicitly assumes every generated instance is feasible.  With a
synthetic fleet some tasks can end up short of aggregate contribution,
especially at few users and high ``T``; per DESIGN.md (substitution 4) the
generator then either *boosts* contributions toward the task (scaling every
contributor's ``q`` by a common factor, i.e. ``p' = 1 − (1−p)^λ``) or
*drops* the task, and reports exactly what it did in the returned
:class:`RepairReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.errors import ValidationError
from ..core.kernels import resolve_workload_kernel
from ..core.obshooks import span
from ..core.transforms import contribution_to_pos, pos_to_contribution
from ..core.types import AuctionInstance, SingleTaskInstance, Task, UserType
from ..mobility.markov import MarkovMobilityModel
from ..mobility.markov_kernel import FleetProfiles, fleet_profiles
from .config import SimulationConfig, table2_defaults
from .sampling import sample_costs, sample_task_set_size

__all__ = [
    "RepairReport",
    "GeneratedSingleTask",
    "GeneratedMultiTask",
    "WorkloadGenerator",
]

#: Boosted PoS values are clamped here; beyond it a task is dropped instead.
_MAX_BOOSTED_POS = 0.95


@dataclass(frozen=True)
class RepairReport:
    """What feasibility repair did to a generated instance."""

    boosted_tasks: dict[int, float] = field(default_factory=dict)  # task -> λ
    dropped_tasks: tuple[int, ...] = ()
    resampled_users: int = 0

    @property
    def clean(self) -> bool:
        """True when the instance needed no repair at all."""
        return not self.boosted_tasks and not self.dropped_tasks


@dataclass(frozen=True)
class GeneratedSingleTask:
    """A generated single-task instance plus its provenance."""

    instance: SingleTaskInstance
    task_cell: int
    taxi_of_user: dict[int, int]
    repair: RepairReport


@dataclass(frozen=True)
class GeneratedMultiTask:
    """A generated multi-task instance plus its provenance."""

    instance: AuctionInstance
    task_cells: tuple[int, ...]
    taxi_of_user: dict[int, int]
    repair: RepairReport


class WorkloadGenerator:
    """Builds auction instances from a fitted mobility model.

    Args:
        model: Fitted per-taxi Markov models.
        config: Simulation parameters (defaults to Table II).
        current_cells: Optional snapshot positions (taxi -> cell).  Defaults
            to each taxi's most-visited location.
        seed: Base RNG seed; per-call ``seed`` arguments derive from it.
        kernel: Default compute kernel for this generator's instances —
            ``"vectorized"`` assembles bids from batched fleet arrays
            (:mod:`repro.workload.engine`), ``"reference"`` keeps the
            original per-taxi loops.  ``None`` resolves through
            :func:`repro.core.kernels.resolve_workload_kernel`; per-call
            ``kernel=`` arguments override.  Outputs are bit-identical.
        tracer: Optional duck-typed tracer; instance builds emit
            ``workload.single_task`` / ``workload.multi_task`` spans.

    The candidate-ranking structures are built lazily per kernel: the
    first reference-kernel call materialises the per-taxi ``_ranked``
    lists, the first vectorized call builds one batched
    :class:`~repro.mobility.markov_kernel.FleetProfiles`.  A generator
    that only ever runs one kernel never pays for the other.
    """

    def __init__(
        self,
        model: MarkovMobilityModel,
        config: SimulationConfig | None = None,
        current_cells: dict[int, int] | None = None,
        seed: int = 0,
        kernel: str | None = None,
        tracer=None,
    ):
        self.model = model
        self.config = config or table2_defaults()
        self.seed = seed
        self.kernel = resolve_workload_kernel(kernel)
        self.tracer = tracer
        if not model.taxi_ids:
            raise ValidationError("mobility model has no fitted taxis")
        self._given_current = dict(current_cells) if current_cells else None
        self._current_lazy: dict[int, int] | None = None
        self._ranked_lazy: dict[int, list[tuple[int, float]]] | None = None
        self._profiles_lazy: FleetProfiles | None = None

    @property
    def _max_keep(self) -> int:
        return max(self.config.tasks_per_user[1], 20)

    @property
    def _current(self) -> dict[int, int]:
        """Snapshot position per taxi (reference-kernel structure, lazy)."""
        if self._current_lazy is None:
            current: dict[int, int] = {}
            for taxi_id in self.model.taxi_ids:
                if self._given_current is not None and taxi_id in self._given_current:
                    current[taxi_id] = self._given_current[taxi_id]
                else:
                    taxi_model = self.model.model_for(taxi_id)
                    visits = taxi_model.counts.sum(axis=1)
                    current[taxi_id] = taxi_model.locations[int(visits.argmax())]
            self._current_lazy = current
        return self._current_lazy

    @property
    def _ranked(self) -> dict[int, list[tuple[int, float]]]:
        """Ranked candidate destinations per taxi (reference structure, lazy).

        Each taxi's reach profile over ``pos_horizon`` Markov steps,
        sorted by ``(-PoS, cell)`` and truncated to ``max(max_k, 20)``.
        """
        if self._ranked_lazy is None:
            ranked_map: dict[int, list[tuple[int, float]]] = {}
            for taxi_id in self.model.taxi_ids:
                profile = self.model.reach_profile(
                    taxi_id, self._current[taxi_id], self.config.pos_horizon
                )
                ranked = sorted(profile.items(), key=lambda item: (-item[1], item[0]))
                ranked_map[taxi_id] = ranked[: self._max_keep]
            self._ranked_lazy = ranked_map
        return self._ranked_lazy

    def fleet_profiles(self) -> FleetProfiles:
        """Batched profiles for the vectorized kernel (lazy, cached)."""
        if self._profiles_lazy is None:
            with span(
                self.tracer,
                "workload.profiles",
                n_taxis=len(self.model.taxi_ids),
                horizon=self.config.pos_horizon,
            ):
                self._profiles_lazy = fleet_profiles(
                    self.model.fleet_counts(),
                    self.model.smoothing,
                    self.config.pos_horizon,
                    current_cells=self._given_current,
                    max_keep=self._max_keep,
                )
        return self._profiles_lazy

    def _rng(self, seed: int | None) -> np.random.Generator:
        return np.random.default_rng(self.seed if seed is None else seed)

    def _popular_cells(self, taxi_ids: list[int]) -> list[tuple[int, int]]:
        """(cell, #taxis predicting it) sorted by descending popularity."""
        counts: dict[int, int] = {}
        for taxi_id in taxi_ids:
            for cell, _ in self._ranked[taxi_id]:
                counts[cell] = counts.get(cell, 0) + 1
        return sorted(counts.items(), key=lambda item: (-item[1], item[0]))

    # ------------------------------------------------------------------ #
    # Single task
    # ------------------------------------------------------------------ #

    def single_task_instance(
        self,
        n_users: int,
        requirement: float | None = None,
        seed: int | None = None,
        kernel: str | None = None,
    ) -> GeneratedSingleTask:
        """Fix a popular task cell and sample ``n_users`` who can reach it.

        Args:
            n_users: Number of participating users.
            requirement: PoS requirement ``T`` override (defaults to config).
            seed: RNG seed for this instance.
            kernel: Compute kernel override (defaults to the generator's).

        Raises:
            ValidationError: If the fleet has fewer than ``n_users`` taxis
                that could possibly serve any popular cell.
        """
        if n_users <= 0:
            raise ValidationError(f"n_users must be positive, got {n_users!r}")
        resolved = self.kernel if kernel is None else resolve_workload_kernel(kernel)
        rng = self._rng(seed)
        with span(
            self.tracer, "workload.single_task", n_users=n_users, kernel=resolved
        ):
            if resolved == "vectorized":
                from .engine import single_task_vectorized

                return single_task_vectorized(
                    self.fleet_profiles(), self.config, n_users, requirement, rng
                )
            return self._single_task_reference(n_users, requirement, rng)

    def _single_task_reference(
        self,
        n_users: int,
        requirement: float | None,
        rng: np.random.Generator,
    ) -> GeneratedSingleTask:
        pos_requirement = (
            self.config.pos_requirement if requirement is None else requirement
        )

        all_taxis = list(self.model.taxi_ids)
        popular = self._popular_cells(all_taxis)
        # The task: one of the most commonly predicted destinations, chosen
        # at random among the top handful ("a randomly chosen task", §IV-C).
        top_pool = [cell for cell, _ in popular[:5]]
        task_cell = int(rng.choice(top_pool))

        candidates: list[tuple[int, float]] = []
        for taxi_id in all_taxis:
            pos = dict(self._ranked[taxi_id]).get(task_cell)
            if pos is None:
                # Fall back to the full profile: the taxi may reach the cell
                # with low probability even if it is not a top prediction.
                pos = self.model.reach_profile(
                    taxi_id, self._current[taxi_id], self.config.pos_horizon
                ).get(task_cell)
            if pos is not None and pos > 0.0:
                candidates.append((taxi_id, float(pos)))
        if len(candidates) < n_users:
            raise ValidationError(
                f"only {len(candidates)} taxis can serve cell {task_cell}; "
                f"need {n_users} — enlarge the fleet"
            )
        chosen_idx = rng.choice(len(candidates), size=n_users, replace=False)
        chosen = [candidates[i] for i in chosen_idx]
        costs = sample_costs(self.config, n_users, rng)

        q_requirement = pos_to_contribution(pos_requirement)
        contributions = [pos_to_contribution(p) for _, p in chosen]
        repair = RepairReport()
        total = sum(contributions)
        needed = self.config.feasibility_margin * q_requirement
        if total < needed and self.config.repair == "boost":
            lam = needed / total if total > 0 else float("inf")
            boosted = [min(q * lam, pos_to_contribution(_MAX_BOOSTED_POS)) for q in contributions]
            if sum(boosted) >= q_requirement:
                contributions = boosted
                repair = RepairReport(boosted_tasks={task_cell: lam})
        instance = SingleTaskInstance(
            requirement=q_requirement,
            user_ids=tuple(range(n_users)),
            costs=tuple(float(c) for c in costs),
            contributions=tuple(contributions),
        )
        taxi_of_user = {i: taxi_id for i, (taxi_id, _) in enumerate(chosen)}
        return GeneratedSingleTask(
            instance=instance, task_cell=task_cell, taxi_of_user=taxi_of_user, repair=repair
        )

    # ------------------------------------------------------------------ #
    # Multi task
    # ------------------------------------------------------------------ #

    def multi_task_instance(
        self,
        n_users: int,
        n_tasks: int,
        requirement: float | None = None,
        seed: int | None = None,
        kernel: str | None = None,
    ) -> GeneratedMultiTask:
        """Sample users and build the task pool from their predictions.

        Users whose top predictions miss the pool entirely are replaced by
        fresh taxis (counted in the repair report); tasks that remain
        uncoverable after repair are dropped (or boosted, per config).
        ``kernel`` overrides the generator's compute kernel for this call.
        """
        if n_users <= 0 or n_tasks <= 0:
            raise ValidationError("n_users and n_tasks must be positive")
        resolved = self.kernel if kernel is None else resolve_workload_kernel(kernel)
        rng = self._rng(seed)
        with span(
            self.tracer,
            "workload.multi_task",
            n_users=n_users,
            n_tasks=n_tasks,
            kernel=resolved,
        ):
            if resolved == "vectorized":
                from .engine import multi_task_vectorized

                return multi_task_vectorized(
                    self.fleet_profiles(), self.config, n_users, n_tasks, requirement, rng
                )
            return self._multi_task_reference(n_users, n_tasks, requirement, rng)

    def _multi_task_reference(
        self,
        n_users: int,
        n_tasks: int,
        requirement: float | None,
        rng: np.random.Generator,
    ) -> GeneratedMultiTask:
        pos_requirement = (
            self.config.pos_requirement if requirement is None else requirement
        )
        all_taxis = list(self.model.taxi_ids)
        if len(all_taxis) < n_users:
            raise ValidationError(
                f"fleet has {len(all_taxis)} taxis; need {n_users} users"
            )
        order = list(rng.permutation(all_taxis))
        sampled = order[:n_users]
        reserve = order[n_users:]

        pool = [cell for cell, _ in self._popular_cells(sampled)[:n_tasks]]
        pool_set = set(pool)

        users: list[tuple[int, dict[int, float]]] = []  # (taxi, task->pos)
        resampled = 0
        # Index pointer instead of reserve.pop(0): popping the head of a
        # list is O(len(reserve)) per resample.
        next_reserve = 0
        for taxi_id in sampled:
            bundle = self._bundle_for(taxi_id, pool_set, rng)
            while bundle is None and next_reserve < len(reserve):
                resampled += 1
                taxi_id = reserve[next_reserve]
                next_reserve += 1
                bundle = self._bundle_for(taxi_id, pool_set, rng)
            if bundle is None:
                raise ValidationError(
                    "could not find enough taxis whose predictions overlap the task pool"
                )
            users.append((taxi_id, bundle))

        q_requirement = pos_to_contribution(pos_requirement)
        coverage: dict[int, float] = {cell: 0.0 for cell in pool}
        for _, bundle in users:
            for cell, p in bundle.items():
                coverage[cell] += pos_to_contribution(p)

        boosted: dict[int, float] = {}
        dropped: list[int] = []
        needed = self.config.feasibility_margin * q_requirement
        for cell in pool:
            if coverage[cell] >= needed:
                continue
            if self.config.repair == "none":
                continue
            if self.config.repair == "boost" and coverage[cell] > 0:
                lam = needed / coverage[cell]
                new_total = self._apply_boost(users, cell, lam)
                if new_total >= q_requirement:
                    boosted[cell] = lam
                    continue
            dropped.append(cell)

        # Hoisted membership sets: rebuilding set(dropped)/set(kept_cells)
        # inside the per-user loop made assembly O(n_users · n_tasks).
        dropped_set = frozenset(dropped)
        kept_cells = tuple(cell for cell in pool if cell not in dropped_set)
        if not kept_cells:
            raise ValidationError("every task was dropped during feasibility repair")
        kept_set = frozenset(kept_cells)
        tasks = [Task(cell, pos_requirement) for cell in kept_cells]
        costs = sample_costs(self.config, len(users), rng)
        user_types = []
        taxi_of_user: dict[int, int] = {}
        for i, ((taxi_id, bundle), cost) in enumerate(zip(users, costs)):
            kept_bundle = {c: p for c, p in bundle.items() if c in kept_set}
            if not kept_bundle:
                continue  # the user's entire bundle was dropped
            user_types.append(UserType(i, cost=float(cost), pos=kept_bundle))
            taxi_of_user[i] = taxi_id
        instance = AuctionInstance(tasks, user_types)
        return GeneratedMultiTask(
            instance=instance,
            task_cells=kept_cells,
            taxi_of_user=taxi_of_user,
            repair=RepairReport(
                boosted_tasks=boosted,
                dropped_tasks=tuple(dropped),
                resampled_users=resampled,
            ),
        )

    def _bundle_for(
        self, taxi_id: int, pool: set[int], rng: np.random.Generator
    ) -> dict[int, float] | None:
        """The taxi's task bundle: her top pool predictions, or None if empty."""
        k = sample_task_set_size(self.config, rng)
        in_pool = [(cell, p) for cell, p in self._ranked[taxi_id] if cell in pool]
        if not in_pool:
            return None
        return dict(in_pool[:k])

    @staticmethod
    def _apply_boost(
        users: list[tuple[int, dict[int, float]]], cell: int, lam: float
    ) -> float:
        """Scale every contributor's contribution for ``cell`` by ``λ`` in place.

        ``q' = λ·q`` in contribution space is ``p' = 1 − (1−p)^λ`` in PoS
        space; boosted values are clamped at :data:`_MAX_BOOSTED_POS`.
        Returns the task's new total contribution.
        """
        total = 0.0
        for _, bundle in users:
            if cell in bundle:
                q = pos_to_contribution(bundle[cell]) * lam
                p = min(contribution_to_pos(q), _MAX_BOOSTED_POS)
                bundle[cell] = p
                total += pos_to_contribution(p)
        return total
