"""ASCII table rendering for benchmark output.

The benchmark harness prints, for every paper table/figure, the same
rows/series the paper reports.  :func:`format_table` renders those rows in a
compact aligned layout so `pytest benchmarks/ -s` output is readable and
diff-able (EXPERIMENTS.md embeds these tables verbatim).
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_cell"]


def format_cell(value: object, precision: int = 2) -> str:
    """Render one cell: floats rounded, everything else via ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 2,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    >>> print(format_table(["n", "cost"], [[10, 1.234], [100, 5.0]]))
    n    | cost
    -----+-----
    10   | 1.23
    100  | 5.00
    """
    rendered = [[format_cell(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)
