"""Bootstrap confidence intervals for simulation estimates.

The paper reports point estimates over a handful of repetitions; a
production evaluation should quantify uncertainty.  :func:`bootstrap_ci`
implements the standard percentile bootstrap for any statistic of a sample
(social costs over seeds, realised spends over executions, ...), and
:func:`paired_difference_ci` the paired version for comparing two
algorithms on the *same* instances — the right tool for claims like
"FPTAS beats Min-Greedy", where instance-to-instance variance dominates.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from ..core.errors import ValidationError

__all__ = ["ConfidenceInterval", "bootstrap_ci", "paired_difference_ci"]


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A point estimate with a percentile-bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_ci(
    sample: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile bootstrap CI for ``statistic`` of ``sample``.

    Args:
        sample: The observations (at least 2).
        statistic: Any reducer of a 1-D array (default: mean).
        confidence: Interval mass (default 95%).
        n_boot: Bootstrap resamples.
        seed: RNG seed — results are deterministic given it.
    """
    if len(sample) < 2:
        raise ValidationError("bootstrap needs at least 2 observations")
    if not (0.0 < confidence < 1.0):
        raise ValidationError(f"confidence must be in (0, 1), got {confidence!r}")
    if n_boot < 100:
        raise ValidationError(f"n_boot too small for stable quantiles: {n_boot!r}")
    data = np.asarray(sample, dtype=float)
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, len(data), size=(n_boot, len(data)))
    replicates = np.array([statistic(data[row]) for row in indices])
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        estimate=float(statistic(data)),
        low=float(np.quantile(replicates, alpha)),
        high=float(np.quantile(replicates, 1.0 - alpha)),
        confidence=confidence,
    )


def paired_difference_ci(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap CI for the mean of paired differences ``a_i − b_i``.

    If the interval lies entirely below 0, algorithm A is significantly
    cheaper than B on these instances (and vice versa).
    """
    if len(sample_a) != len(sample_b):
        raise ValidationError("paired samples must have equal length")
    differences = np.asarray(sample_a, dtype=float) - np.asarray(sample_b, dtype=float)
    return bootstrap_ci(
        differences, statistic=np.mean, confidence=confidence, n_boot=n_boot, seed=seed
    )
