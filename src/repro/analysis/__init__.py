"""Analysis helpers: empirical statistics and table rendering."""

from .bootstrap import ConfidenceInterval, bootstrap_ci, paired_difference_ci
from .stats import Summary, empirical_cdf, histogram_pdf, summarize
from .tables import format_cell, format_table

__all__ = [
    "empirical_cdf",
    "histogram_pdf",
    "Summary",
    "summarize",
    "format_table",
    "format_cell",
    "ConfidenceInterval",
    "bootstrap_ci",
    "paired_difference_ci",
]
