"""Statistical helpers for the evaluation (CDF/PDF plots, summaries).

Small, dependency-light utilities the experiment drivers and benchmarks use
to turn raw simulation output into the series the paper's figures plot:
empirical CDFs (Figure 6), histogram PDFs (Figure 4), and summary rows.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..core.errors import ValidationError

__all__ = ["empirical_cdf", "histogram_pdf", "Summary", "summarize"]


def empirical_cdf(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """The empirical CDF of a sample: sorted values and F(value).

    Returns ``(xs, F)`` with ``F[i] = (i+1)/n`` — the fraction of the sample
    at or below ``xs[i]``.

    >>> xs, F = empirical_cdf([3.0, 1.0, 2.0])
    >>> list(xs), list(F)
    ([1.0, 2.0, 3.0], [0.3333333333333333, 0.6666666666666666, 1.0])
    """
    if len(values) == 0:
        raise ValidationError("cannot build a CDF from an empty sample")
    xs = np.sort(np.asarray(values, dtype=float))
    F = np.arange(1, len(xs) + 1) / len(xs)
    return xs, F


def histogram_pdf(
    values: Sequence[float],
    bins: int = 20,
    value_range: tuple[float, float] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """A normalised histogram (empirical PDF): bin centres and densities.

    Densities integrate to 1 over the histogram's range, matching the
    "empirical probability distribution function" of Figure 4.
    """
    if len(values) == 0:
        raise ValidationError("cannot build a PDF from an empty sample")
    density, edges = np.histogram(
        np.asarray(values, dtype=float), bins=bins, range=value_range, density=True
    )
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, density


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a sample."""
    if len(values) == 0:
        raise ValidationError("cannot summarize an empty sample")
    arr = np.asarray(values, dtype=float)
    return Summary(
        n=len(arr),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        maximum=float(arr.max()),
    )
