"""Command-line interface: regenerate any of the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig5a
    python -m repro run fig3 --n-taxis 400 --seed 7
    python -m repro run all --json --workers 4
    python -m repro run fig5b --trace --quick --out-dir /tmp/demo
    python -m repro run all --resume runs/all-20260806-091500
    python -m repro report /tmp/demo
    python -m repro enqueue all --quick --out-dir /tmp/q
    python -m repro worker /tmp/q

Each experiment prints the same rows/series the paper's figure plots (see
EXPERIMENTS.md for the paper-vs-measured comparison; docs/RUNNING.md for
the full CLI guide).

Every ``run`` writes a run directory (default ``runs/<run-id>``) holding a
``MANIFEST.json`` provenance record, an ``events.jsonl`` event stream, a
``checkpoint.jsonl`` cell ledger, a ``metrics.json`` summary, and one CSV
per experiment.  Experiments execute as *cell grids*: ``--workers N``
shards the cells over N processes (``--workers 1``, the default, is the
bit-exact serial path — parallel runs produce identical CSVs and metrics);
``--resume <run-dir>`` re-opens an interrupted run and recomputes only the
cells its checkpoint is missing.  ``--trace`` additionally streams the
full span hierarchy and auction audit trail into the JSONL; ``report``
reconstructs stage timings, reuse fractions, and per-winner payment
explanations from that directory alone.

For multi-process (or multi-host, over a shared filesystem) runs,
``enqueue`` populates a SQLite cell queue (``queue.db``) instead of
executing anything, any number of ``worker`` processes drain it with
crash-safe lease reclamation, and ``run --resume <dir> --backend sqlite``
aggregates the drained cells into the usual CSVs — byte-identical to a
serial ``run``.  See docs/DISTRIBUTED.md for the operator's guide.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from .core.kernels import (
    ENV_KERNEL,
    ENV_PRICE_WORKERS,
    ENV_WORKLOAD_KERNEL,
    KERNELS,
    resolve_kernel,
    resolve_price_workers,
    resolve_workload_kernel,
)
from .obs import EventLog, RunManifest, Tracer, build_report, format_report, new_run_id
from .obs.dashboard import watch_dashboard, write_dashboard
from .obs.metrics import MetricsRegistry
from .obs.profiler import build_profile, write_profile
from .obs.progress import PROGRESS_SUFFIX, format_progress, progress_printer
from .simulation import experiments as exp
from .queue import (
    QUEUE_DB_NAME,
    JsonlBackend,
    QueueWorker,
    SqliteBackend,
    default_worker_id,
    enqueue_grids,
)
from .queue.worker import tuplify_overrides
from .simulation.checkpoint import CHECKPOINT_NAME
from .simulation.parallel import ExperimentRunner

#: experiment id -> (driver, testbed kind); ids double as GRIDS keys.
EXPERIMENTS = {
    "fig3": (exp.run_fig3, "citywide"),
    "fig4": (exp.run_fig4, "citywide"),
    "fig5a": (exp.run_fig5a, "dense"),
    "fig5b": (exp.run_fig5b, "dense"),
    "fig5c": (exp.run_fig5c, "dense"),
    "fig6": (exp.run_fig6, "dense"),
    "fig7": (exp.run_fig7, "dense"),
    "fig8": (exp.run_fig8, "dense"),
    "fig9": (exp.run_fig9, "dense"),
    "sweep-single": (exp.run_sweep_single, "dense"),
    "ablation-epsilon": (exp.run_ablation_epsilon, "dense"),
    "ablation-delta-q": (exp.run_ablation_delta_q, "dense"),
    "ablation-smoothing": (exp.run_ablation_smoothing, "citywide"),
}

#: Small per-driver overrides for ``--quick``: minutes become seconds while
#: every driver still exercises its full code path (spans, audit, CSV).
QUICK_OVERRIDES = {
    "fig3": {"m_values": (3, 9)},
    "fig4": {"bins": 10},
    "fig5a": {"n_users_list": (10, 14), "repeats": 1},
    "fig5b": {"n_users_list": (10, 15), "n_tasks": 5, "repeats": 1},
    "fig5c": {"n_tasks_list": (5, 8), "n_users": 12, "repeats": 1},
    "fig6": {
        "single_task_runs": 2,
        "single_task_users": 12,
        "multi_task_users": 15,
        "multi_task_tasks": 6,
    },
    "fig7": {"n_users": 15, "n_tasks": 6, "repeats": 1},
    "fig8": {"requirements": (0.5, 0.7), "n_users": 15, "n_tasks": 8, "repeats": 1},
    "fig9": {"requirements": (0.5, 0.7), "n_users": 15, "n_tasks": 8, "repeats": 1},
    "sweep-single": {"n_users_list": (10, 14), "repeats": 1},
    "ablation-epsilon": {"epsilons": (1.0, 0.5), "n_users": 12, "repeats": 1},
    "ablation-delta-q": {
        "delta_q_values": (0.2, 0.1),
        "n_users": 12,
        "n_tasks": 6,
        "repeats": 1,
    },
    "ablation-smoothing": {"m_values": (3, 9)},
}


def _price_workers_argtype(value: str) -> str:
    """argparse type for ``--price-workers``: reject typos at parse time
    (mirroring how ``choices`` guards ``--kernel``)."""
    from .core.errors import ValidationError

    try:
        resolve_price_workers(value)
    except ValidationError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the ICDCS'17 crowdsensing-mechanism experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run.add_argument("--n-taxis", type=int, default=250, help="fleet size (default 250)")
    run.add_argument("--seed", type=int, default=42, help="testbed RNG seed (default 42)")
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for cell execution (default 1 = serial; "
        "results are identical either way)",
    )
    run.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="cells per dispatch chunk (default: ~4 chunks per worker)",
    )
    run.add_argument(
        "--resume",
        type=Path,
        default=None,
        metavar="RUN_DIR",
        help="re-open an interrupted run directory and compute only the "
        "cells missing from its checkpoint.jsonl",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON document instead of tables",
    )
    run.add_argument(
        "--out-dir",
        type=Path,
        default=None,
        help="run directory for manifest/events/CSVs (default runs/<run-id>)",
    )
    run.add_argument(
        "--trace",
        action="store_true",
        help="stream the span hierarchy and auction audit trail to events.jsonl",
    )
    run.add_argument(
        "--progress",
        action="store_true",
        help="print a live progress line for long phases (implies --trace: "
        "heartbeats ride the same event stream)",
    )
    run.add_argument(
        "--quick",
        action="store_true",
        help="shrink every experiment to a smoke-test size",
    )
    run.add_argument(
        "--kernel",
        choices=list(KERNELS),
        default=None,
        help="mechanism compute kernel (default: vectorized, or the "
        f"{ENV_KERNEL} environment variable); results are bit-identical",
    )
    run.add_argument(
        "--workload-kernel",
        choices=list(KERNELS),
        default=None,
        help="workload-engine kernel for Markov fitting and instance "
        "generation (default: vectorized, or the "
        f"{ENV_WORKLOAD_KERNEL} environment variable); instances are "
        "bit-identical",
    )
    run.add_argument(
        "--price-workers",
        default=None,
        type=_price_workers_argtype,
        metavar="N|auto",
        help="worker fan-out for the counterfactual pricing phase "
        f"(default: auto, or the {ENV_PRICE_WORKERS} environment "
        "variable); prices are bit-identical at any count",
    )
    run.add_argument(
        "--backend",
        choices=["jsonl", "sqlite"],
        default="jsonl",
        help="cell-ledger backend: 'jsonl' (checkpoint.jsonl, the default, "
        "unchanged bit for bit) or 'sqlite' (queue.db — the store "
        "'repro worker' processes share); results are identical",
    )

    enqueue = sub.add_parser(
        "enqueue",
        help="populate a SQLite cell queue for 'repro worker' processes "
        "(no cells execute)",
    )
    enqueue.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    enqueue.add_argument(
        "--n-taxis", type=int, default=250, help="fleet size (default 250)"
    )
    enqueue.add_argument(
        "--seed", type=int, default=42, help="testbed RNG seed (default 42)"
    )
    enqueue.add_argument(
        "--quick",
        action="store_true",
        help="enqueue the smoke-test grid sizes (same shrink as 'run --quick')",
    )
    enqueue.add_argument(
        "--out-dir",
        type=Path,
        default=None,
        help="queue directory for MANIFEST/queue.db/events.jsonl "
        "(default runs/<run-id>)",
    )
    enqueue.add_argument(
        "--set",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="override one grid parameter (VALUE is JSON, e.g. "
        "--set 'n_users_list=[10,12,14]' --set repeats=5); repeatable, "
        "applied to every enqueued experiment",
    )

    worker = sub.add_parser(
        "worker", help="drain a queue directory written by 'enqueue'"
    )
    worker.add_argument(
        "run_dir", type=Path, help="queue directory holding queue.db"
    )
    worker.add_argument(
        "--worker-id",
        default=None,
        help="stable identity for claims and events (default <host>-<pid>)",
    )
    worker.add_argument(
        "--lease",
        type=float,
        default=60.0,
        help="claim lease in seconds; a dead worker's cell is reclaimed "
        "after at most this long (default 60)",
    )
    worker.add_argument(
        "--poll",
        type=float,
        default=0.5,
        help="seconds between claim attempts while peers hold leases "
        "(default 0.5)",
    )
    worker.add_argument(
        "--max-cells",
        type=int,
        default=None,
        help="stop after this many cells (default: drain the queue)",
    )

    report = sub.add_parser(
        "report", help="reconstruct a run from its manifest + events.jsonl"
    )
    report.add_argument("run_dir", type=Path, help="run directory written by 'run'")
    report.add_argument(
        "--json", action="store_true", help="emit the report as one JSON document"
    )
    report.add_argument(
        "--html",
        nargs="?",
        type=Path,
        const=True,
        default=None,
        metavar="PATH",
        help="render a self-contained HTML dashboard "
        "(default <run-dir>/report.html)",
    )
    report.add_argument(
        "--watch",
        action="store_true",
        help="with --html: re-render (atomically) whenever events.jsonl grows",
    )
    report.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="poll interval in seconds for --watch (default 2)",
    )
    report.add_argument(
        "--profile",
        action="store_true",
        help="write profile.json + profile.folded (flamegraph folded stacks) "
        "and print the self-time hotspot table",
    )
    return parser


def _price_workers_spec(args: argparse.Namespace) -> str:
    """The pricing fan-out requested by this command, normalised for the
    manifest: ``"auto"`` stays symbolic (the resolved count is a property of
    the host, not of the run configuration), explicit counts stringify.
    Raises :class:`ValidationError` on a typo, naming the source."""
    spec = (
        args.price_workers
        if args.price_workers is not None
        else os.environ.get(ENV_PRICE_WORKERS) or "auto"
    )
    resolved = resolve_price_workers(spec)
    return "auto" if resolved.auto else str(resolved.count)


def _open_resume(args: argparse.Namespace) -> tuple[str, Path, dict] | int:
    """Validate ``--resume`` against the prior run's manifest.

    Returns ``(run_id, out_dir, prior_config)`` or an exit code on
    refusal: a checkpoint only describes the configuration it was written
    under, so resuming with a different experiment set / seed / fleet /
    quick flag / ledger backend would silently mix incompatible results.
    """
    out_dir = args.resume
    manifest_ok = (out_dir / "MANIFEST.json").exists()
    if not manifest_ok:
        print(f"error: no MANIFEST.json in {out_dir}", file=sys.stderr)
        return 2
    prior = RunManifest.load(out_dir)
    kernel = resolve_kernel(args.kernel)
    mismatches = []
    for label, ours, theirs in (
        ("experiment", args.experiment, prior.config.get("experiment")),
        ("seed", args.seed, prior.seed),
        ("n_taxis", args.n_taxis, prior.config.get("n_taxis")),
        ("quick", args.quick, prior.config.get("quick")),
        # Kernels are bit-identical, but a checkpoint should still describe
        # the configuration it resumes under; pre-kernel manifests (no
        # "kernel" key) accept whatever resolves now.
        ("kernel", kernel, prior.config.get("kernel", kernel)),
        (
            "workload_kernel",
            resolve_workload_kernel(args.workload_kernel),
            prior.config.get(
                "workload_kernel", resolve_workload_kernel(args.workload_kernel)
            ),
        ),
        # Same for pricing fan-out: bit-identical prices, but mixing worker
        # configurations inside one run directory would misattribute its
        # timing records.
        (
            "price_workers",
            _price_workers_spec(args),
            prior.config.get("price_workers", _price_workers_spec(args)),
        ),
        # A queue directory's cells live in queue.db, a classic run's in
        # checkpoint.jsonl; resuming with the wrong --backend would see an
        # empty ledger and silently recompute everything.
        ("backend", args.backend, prior.config.get("backend", "jsonl")),
    ):
        if ours != theirs:
            mismatches.append(f"{label}: run has {theirs!r}, command asks {ours!r}")
    if mismatches:
        print(
            f"error: cannot resume {out_dir} with a different configuration:\n  "
            + "\n  ".join(mismatches),
            file=sys.stderr,
        )
        return 2
    return prior.run_id, out_dir, dict(prior.config)


def _cmd_run(args: argparse.Namespace) -> int:
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    quiet = args.json
    if args.kernel is not None:
        # Exporting (rather than set_default_kernel) propagates the choice
        # into the worker processes the parallel runner spawns.
        os.environ[ENV_KERNEL] = args.kernel
    kernel = resolve_kernel(args.kernel)
    if args.workload_kernel is not None:
        # Same propagation story as --kernel: workers inherit via the env.
        os.environ[ENV_WORKLOAD_KERNEL] = args.workload_kernel
    workload_kernel = resolve_workload_kernel(args.workload_kernel)
    if args.price_workers is not None:
        resolve_price_workers(args.price_workers)  # fail fast on a typo
        os.environ[ENV_PRICE_WORKERS] = str(args.price_workers)
    price_workers = _price_workers_spec(args)
    resume_overrides: dict | None = None
    if args.resume is not None:
        if args.out_dir is not None:
            print(
                "error: --resume already names the run directory; drop --out-dir",
                file=sys.stderr,
            )
            return 2
        opened = _open_resume(args)
        if isinstance(opened, int):
            return opened
        run_id, out_dir, prior_config = opened
        # A queue directory records the overrides its cells were enqueued
        # with (possibly --set customised); reuse them so the resumed run
        # resolves the exact same grid.  Pre-queue manifests have no
        # "overrides" key and fall back to the --quick rule below.
        resume_overrides = prior_config.get("overrides")
    else:
        run_id = new_run_id(args.experiment)
        out_dir = args.out_dir if args.out_dir is not None else Path("runs") / run_id

    if resume_overrides is not None:
        overrides_by_name = {
            name: tuplify_overrides(resume_overrides.get(name) or {}) for name in names
        }
    else:
        overrides_by_name = {
            name: (dict(QUICK_OVERRIDES.get(name, {})) if args.quick else {})
            for name in names
        }

    manifest = RunManifest(
        run_id=run_id,
        command="run",
        experiments=names,
        seed=args.seed,
        config={
            "n_taxis": args.n_taxis,
            "quick": args.quick,
            "trace": args.trace or args.progress,
            "experiment": args.experiment,
            "workers": args.workers,
            "chunk_size": args.chunk_size,
            "resumed": args.resume is not None,
            "kernel": kernel,
            "workload_kernel": workload_kernel,
            "price_workers": price_workers,
            "backend": args.backend,
            "overrides": overrides_by_name,
        },
        events_file="events.jsonl",
    )
    manifest.write(out_dir)  # crash-safe: the directory identifies itself early

    started = time.perf_counter()
    summaries: list[dict] = []
    json_payload: list[dict] = []
    metrics = MetricsRegistry()
    with EventLog(out_dir / "events.jsonl") as log:
        sink = log.append
        if args.progress:
            # --progress implies tracing: heartbeats ride the event stream,
            # and the sink additionally mirrors them to one console line.
            printer = progress_printer()

            def sink(record: dict, _append=log.append, _print=printer) -> None:
                _append(record)
                name = record.get("name", "")
                if record.get("type") == "event" and name.endswith(PROGRESS_SUFFIX):
                    _print(
                        format_progress(
                            name[: -len(PROGRESS_SUFFIX)],
                            record.get("done", 0),
                            record.get("total"),
                            record.get("rate"),
                            record.get("eta_seconds"),
                        )
                    )

        trace_on = args.trace or args.progress
        tracer = Tracer(sink=sink, keep_records=False) if trace_on else None

        if args.workers <= 1:
            # Warm the testbed cache up front (workers build their own); the
            # event keeps testbed cost visible in `report` stage timings.
            for kind in sorted({EXPERIMENTS[n][1] for n in names}):
                if not quiet:
                    print(
                        f"# building {kind} testbed "
                        f"({args.n_taxis} taxis, seed {args.seed})..."
                    )
                build_start = time.perf_counter()
                exp.default_testbed(n_taxis=args.n_taxis, seed=args.seed, kind=kind)
                log.append(
                    {
                        "type": "event",
                        "span_id": None,
                        "name": "testbed.built",
                        "kind": kind,
                        "n_taxis": args.n_taxis,
                        "seed": args.seed,
                        "elapsed_seconds": time.perf_counter() - build_start,
                    }
                )

        if args.backend == "sqlite":
            ledger = SqliteBackend(out_dir / QUEUE_DB_NAME)
        else:
            ledger = JsonlBackend(out_dir / CHECKPOINT_NAME)
        completed = ledger.load_completed() if args.resume is not None else {}
        if args.resume is not None and not quiet:
            print(f"# resuming {run_id}: {len(completed)} cell(s) already checkpointed")
        with ledger, ExperimentRunner(
            workers=args.workers,
            n_taxis=args.n_taxis,
            seed=args.seed,
            chunk_size=args.chunk_size,
            tracer=tracer,
            metrics=metrics,
            backend=ledger,
            completed=completed,
        ) as runner:
            for name in names:
                overrides = overrides_by_name[name]
                result, stats = runner.run(name, overrides)
                manifest.cells[name] = stats
                csv_name = f"{name}.csv"
                result.save_csv(out_dir / csv_name)
                manifest.artifacts.append(csv_name)
                log.append(
                    {
                        "type": "event",
                        "span_id": None,
                        "name": "experiment.end",
                        "experiment": name,
                        "elapsed_seconds": stats["seconds"],
                        "n_rows": len(result.rows),
                        "cells_executed": stats["executed"],
                        "cells_skipped": stats["skipped"],
                    }
                )
                summaries.append(
                    {"experiment": name, "elapsed_seconds": stats["seconds"], **stats}
                )
                if quiet:
                    json_payload.append(
                        {
                            "experiment_id": result.experiment_id,
                            "description": result.description,
                            "headers": list(result.headers),
                            "rows": [list(row) for row in result.rows],
                            "extras": result.extras,
                            "elapsed_seconds": stats["seconds"],
                            "cells": stats,
                        }
                    )
                else:
                    print(result.to_table())
                    if result.extras:
                        for key, value in sorted(result.extras.items()):
                            print(f"# {key} = {value}")
                    skipped = (
                        f" ({stats['skipped']} cell(s) from checkpoint)"
                        if stats["skipped"]
                        else ""
                    )
                    print(f"# completed in {stats['seconds']:.1f}s{skipped}\n")

    if args.progress:
        sys.stderr.write("\n")  # release the \r-rewritten progress line
    (out_dir / "metrics.json").write_text(
        json.dumps(metrics.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    manifest.artifacts.append("metrics.json")
    manifest.wall_clock_seconds = time.perf_counter() - started
    manifest.write(out_dir)

    if quiet:
        print(
            json.dumps(
                {
                    "run_id": run_id,
                    "out_dir": str(out_dir),
                    "wall_clock_seconds": manifest.wall_clock_seconds,
                    "experiments": json_payload,
                },
                indent=2,
                default=str,
            )
        )
    else:
        if len(names) > 1:
            print("# elapsed per experiment:")
            for entry in summaries:
                print(f"#   {entry['experiment']:<20} {entry['elapsed_seconds']:>8.1f}s")
            print(f"#   {'total':<20} {manifest.wall_clock_seconds:>8.1f}s")
        print(f"# run artifacts: {out_dir}")
    return 0


def _parse_set_overrides(pairs: list[str]) -> dict:
    """Parse repeated ``--set KEY=VALUE`` flags (VALUE is JSON).

    ``--set 'n_users_list=[10,12,14]'`` → ``{"n_users_list": (10, 12, 14)}``
    (lists become the tuples grid defaults use).  A VALUE that is not
    valid JSON is taken as a bare string, so ``--set foo=bar`` works.
    """
    overrides: dict = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"--set expects KEY=VALUE, got {pair!r}")
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        overrides[key.strip()] = value
    return tuplify_overrides(overrides)


def _cmd_enqueue(args: argparse.Namespace) -> int:
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    kernel = resolve_kernel(None)
    workload_kernel = resolve_workload_kernel(None)
    args.price_workers = None  # enqueue has no flag; record the env/default
    price_workers = _price_workers_spec(args)
    try:
        sets = _parse_set_overrides(args.set or [])
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    overrides_by_name = {}
    for name in names:
        overrides = dict(QUICK_OVERRIDES.get(name, {})) if args.quick else {}
        overrides.update(sets)
        overrides_by_name[name] = overrides

    run_id = new_run_id(f"queue-{args.experiment}")
    out_dir = args.out_dir if args.out_dir is not None else Path("runs") / run_id
    manifest = RunManifest(
        run_id=run_id,
        command="enqueue",
        experiments=names,
        seed=args.seed,
        config={
            # The same keys `run` records, so `run --resume <dir> --backend
            # sqlite` passes resume validation and aggregates the drain.
            "n_taxis": args.n_taxis,
            "quick": args.quick,
            "trace": False,
            "experiment": args.experiment,
            "workers": None,
            "chunk_size": None,
            "resumed": False,
            "kernel": kernel,
            "workload_kernel": workload_kernel,
            "price_workers": price_workers,
            "backend": "sqlite",
            "overrides": overrides_by_name,
        },
        events_file="events.jsonl",
    )
    manifest.write(out_dir)
    with SqliteBackend(out_dir / QUEUE_DB_NAME) as backend:
        try:
            inserted = enqueue_grids(
                backend,
                names,
                overrides_by_name,
                n_taxis=args.n_taxis,
                seed=args.seed,
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        # Workers rebuild the compute configuration from queue meta, so a
        # worker shell needs no kernel flags or environment of its own.
        backend.set_meta("kernel", kernel)
        backend.set_meta("workload_kernel", workload_kernel)
        backend.set_meta("price_workers", price_workers)
        counts = backend.counts()
    with EventLog(out_dir / "events.jsonl") as log:
        log.append(
            {
                "type": "event",
                "span_id": None,
                "name": "queue.enqueued",
                "experiments": names,
                "cells": sum(inserted.values()),
                "pending": counts["pending"],
            }
        )
    for name in names:
        print(f"# {name:<20} {inserted[name]:>4} cell(s) enqueued")
    print(f"# queue: {out_dir / QUEUE_DB_NAME} ({counts['pending']} pending)")
    print(f"# drain with:     python -m repro worker {out_dir}   (any number of shells)")
    print(f"# watch with:     python -m repro report {out_dir} --html --watch")
    print(
        f"# collect with:   python -m repro run {args.experiment} "
        f"--resume {out_dir} --backend sqlite"
        + (" --quick" if args.quick else "")
        + (f" --n-taxis {args.n_taxis}" if args.n_taxis != 250 else "")
        + (f" --seed {args.seed}" if args.seed != 42 else "")
    )
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    run_dir = args.run_dir
    db_path = run_dir / QUEUE_DB_NAME
    if not db_path.exists():
        print(
            f"error: no {QUEUE_DB_NAME} in {run_dir} (create one with "
            "'python -m repro enqueue')",
            file=sys.stderr,
        )
        return 2
    worker_id = args.worker_id or default_worker_id()
    with SqliteBackend(db_path) as backend:
        # Adopt the queue's compute configuration (recorded by enqueue) so
        # every worker — and any child processes — resolves identically.
        for env_key, meta_key in (
            (ENV_KERNEL, "kernel"),
            (ENV_WORKLOAD_KERNEL, "workload_kernel"),
            (ENV_PRICE_WORKERS, "price_workers"),
        ):
            value = backend.get_meta(meta_key)
            if value is not None:
                os.environ[env_key] = str(value)
        with EventLog(run_dir / "events.jsonl") as log:
            worker = QueueWorker(
                backend,
                worker_id=worker_id,
                lease_seconds=args.lease,
                poll_seconds=args.poll,
                max_cells=args.max_cells,
                event_sink=log.append,
            )
            print(
                f"# worker {worker_id} draining {db_path} "
                f"(lease {worker.lease_seconds:.0f}s)"
            )
            stats = worker.run()
        counts = backend.counts()
    print(
        f"# worker {worker_id}: {stats['done']} done, {stats['failed']} failed, "
        f"{stats['lost_leases']} lost lease(s) in {stats['seconds']:.1f}s"
    )
    print(
        "# queue now: "
        + ", ".join(f"{state}={count}" for state, count in counts.items())
    )
    return 1 if stats["failed"] else 0


def _cmd_report(args: argparse.Namespace) -> int:
    run_dir = args.run_dir
    if not run_dir.exists():
        print(f"error: no such run directory: {run_dir}", file=sys.stderr)
        return 2
    if args.watch and args.html is None:
        print("error: --watch requires --html", file=sys.stderr)
        return 2

    if args.html is not None:
        out_path = None if args.html is True else args.html
        if args.watch:
            print(
                f"# watching {run_dir} (ctrl-c to stop); re-rendering on "
                "events.jsonl growth",
                file=sys.stderr,
            )
            try:
                watch_dashboard(
                    run_dir,
                    out_path,
                    interval=args.interval,
                    on_render=lambda path, n: print(
                        f"# render {n}: {path}", file=sys.stderr
                    ),
                )
            except KeyboardInterrupt:
                pass
        else:
            written = write_dashboard(run_dir, out_path)
            print(f"# wrote {written}")
    if args.profile:
        from .obs.events import read_events
        from .obs.manifest import MANIFEST_NAME, RunManifest

        events_file = "events.jsonl"
        if (run_dir / MANIFEST_NAME).exists():
            events_file = RunManifest.load(run_dir).events_file or events_file
        records = read_events(run_dir / events_file, tolerate_partial_tail=True)
        json_path, folded_path = write_profile(run_dir, records=records)
        print(build_profile(records).format())
        print(f"# wrote {json_path} and {folded_path}")
    if args.html is not None or args.profile:
        return 0

    report = build_report(run_dir)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, default=str))
    else:
        print(format_report(report))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, (driver, kind) in EXPERIMENTS.items():
            summary = (driver.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<20} [{kind:>8}]  {summary}")
        return 0
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "enqueue":
        return _cmd_enqueue(args)
    if args.command == "worker":
        return _cmd_worker(args)
    return _cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
