"""Command-line interface: regenerate any of the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig5a
    python -m repro run fig3 --n-taxis 400 --seed 7
    python -m repro run all

Each experiment prints the same rows/series the paper's figure plots (see
EXPERIMENTS.md for the paper-vs-measured comparison).  Testbeds are built
once per invocation and shared across experiments.
"""

from __future__ import annotations

import argparse
import sys
import time

from .simulation import experiments as exp

#: experiment id -> (driver, testbed kind)
EXPERIMENTS = {
    "fig3": (exp.run_fig3, "citywide"),
    "fig4": (exp.run_fig4, "citywide"),
    "fig5a": (exp.run_fig5a, "dense"),
    "fig5b": (exp.run_fig5b, "dense"),
    "fig5c": (exp.run_fig5c, "dense"),
    "fig6": (exp.run_fig6, "dense"),
    "fig7": (exp.run_fig7, "dense"),
    "fig8": (exp.run_fig8, "dense"),
    "fig9": (exp.run_fig9, "dense"),
    "ablation-epsilon": (exp.run_ablation_epsilon, "dense"),
    "ablation-delta-q": (exp.run_ablation_delta_q, "dense"),
    "ablation-smoothing": (exp.run_ablation_smoothing, "citywide"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the ICDCS'17 crowdsensing-mechanism experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run.add_argument("--n-taxis", type=int, default=250, help="fleet size (default 250)")
    run.add_argument("--seed", type=int, default=42, help="testbed RNG seed (default 42)")
    return parser


def _run_one(name: str, testbeds: dict[str, exp.Testbed]) -> None:
    driver, kind = EXPERIMENTS[name]
    start = time.perf_counter()
    result = driver(testbeds[kind])
    elapsed = time.perf_counter() - start
    print(result.to_table())
    if result.extras:
        for key, value in sorted(result.extras.items()):
            print(f"# {key} = {value}")
    print(f"# completed in {elapsed:.1f}s\n")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, (driver, kind) in EXPERIMENTS.items():
            summary = (driver.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<20} [{kind:>8}]  {summary}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    kinds = {EXPERIMENTS[n][1] for n in names}
    testbeds = {}
    for kind in sorted(kinds):
        print(f"# building {kind} testbed ({args.n_taxis} taxis, seed {args.seed})...")
        testbeds[kind] = exp.build_testbed(
            n_taxis=args.n_taxis, seed=args.seed, kind=kind
        )
    for name in names:
        _run_one(name, testbeds)
    return 0


if __name__ == "__main__":
    sys.exit(main())
