"""Command-line interface: regenerate any of the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig5a
    python -m repro run fig3 --n-taxis 400 --seed 7
    python -m repro run all --json
    python -m repro run fig5b --trace --quick --out-dir /tmp/demo
    python -m repro report /tmp/demo

Each experiment prints the same rows/series the paper's figure plots (see
EXPERIMENTS.md for the paper-vs-measured comparison).  Testbeds are built
once per invocation and shared across experiments.

Every ``run`` writes a run directory (default ``runs/<run-id>``) holding a
``MANIFEST.json`` provenance record, an ``events.jsonl`` event stream, and
one CSV per experiment.  ``--trace`` additionally streams the full span
hierarchy and auction audit trail into the JSONL; ``report`` reconstructs
stage timings, reuse fractions, and per-winner payment explanations from
that directory alone.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import time
from pathlib import Path

from .obs import EventLog, RunManifest, Tracer, build_report, format_report, new_run_id
from .simulation import experiments as exp

#: experiment id -> (driver, testbed kind)
EXPERIMENTS = {
    "fig3": (exp.run_fig3, "citywide"),
    "fig4": (exp.run_fig4, "citywide"),
    "fig5a": (exp.run_fig5a, "dense"),
    "fig5b": (exp.run_fig5b, "dense"),
    "fig5c": (exp.run_fig5c, "dense"),
    "fig6": (exp.run_fig6, "dense"),
    "fig7": (exp.run_fig7, "dense"),
    "fig8": (exp.run_fig8, "dense"),
    "fig9": (exp.run_fig9, "dense"),
    "ablation-epsilon": (exp.run_ablation_epsilon, "dense"),
    "ablation-delta-q": (exp.run_ablation_delta_q, "dense"),
    "ablation-smoothing": (exp.run_ablation_smoothing, "citywide"),
}

#: Small per-driver overrides for ``--quick``: minutes become seconds while
#: every driver still exercises its full code path (spans, audit, CSV).
QUICK_OVERRIDES = {
    "fig3": {"m_values": (3, 9)},
    "fig4": {"bins": 10},
    "fig5a": {"n_users_list": (10, 14), "repeats": 1},
    "fig5b": {"n_users_list": (10, 15), "n_tasks": 5, "repeats": 1},
    "fig5c": {"n_tasks_list": (5, 8), "n_users": 12, "repeats": 1},
    "fig6": {
        "single_task_runs": 2,
        "single_task_users": 12,
        "multi_task_users": 15,
        "multi_task_tasks": 6,
    },
    "fig7": {"n_users": 15, "n_tasks": 6, "repeats": 1},
    "fig8": {"requirements": (0.5, 0.7), "n_users": 15, "n_tasks": 8, "repeats": 1},
    "fig9": {"requirements": (0.5, 0.7), "n_users": 15, "n_tasks": 8, "repeats": 1},
    "ablation-epsilon": {"epsilons": (1.0, 0.5), "n_users": 12, "repeats": 1},
    "ablation-delta-q": {
        "delta_q_values": (0.2, 0.1),
        "n_users": 12,
        "n_tasks": 6,
        "repeats": 1,
    },
    "ablation-smoothing": {"m_values": (3, 9)},
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the ICDCS'17 crowdsensing-mechanism experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run.add_argument("--n-taxis", type=int, default=250, help="fleet size (default 250)")
    run.add_argument("--seed", type=int, default=42, help="testbed RNG seed (default 42)")
    run.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON document instead of tables",
    )
    run.add_argument(
        "--out-dir",
        type=Path,
        default=None,
        help="run directory for manifest/events/CSVs (default runs/<run-id>)",
    )
    run.add_argument(
        "--trace",
        action="store_true",
        help="stream the span hierarchy and auction audit trail to events.jsonl",
    )
    run.add_argument(
        "--quick",
        action="store_true",
        help="shrink every experiment to a smoke-test size",
    )

    report = sub.add_parser(
        "report", help="reconstruct a run from its manifest + events.jsonl"
    )
    report.add_argument("run_dir", type=Path, help="run directory written by 'run'")
    report.add_argument(
        "--json", action="store_true", help="emit the report as one JSON document"
    )
    return parser


def _run_one(
    name: str,
    testbeds: dict[str, exp.Testbed],
    tracer=None,
    quick: bool = False,
) -> tuple[exp.ExperimentResult, float]:
    driver, kind = EXPERIMENTS[name]
    kwargs = dict(QUICK_OVERRIDES.get(name, {})) if quick else {}
    if tracer is not None and "tracer" in inspect.signature(driver).parameters:
        kwargs["tracer"] = tracer
    start = time.perf_counter()
    result = driver(testbeds[kind], **kwargs)
    elapsed = time.perf_counter() - start
    return result, elapsed


def _cmd_run(args: argparse.Namespace) -> int:
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    run_id = new_run_id(args.experiment)
    out_dir = args.out_dir if args.out_dir is not None else Path("runs") / run_id
    quiet = args.json

    manifest = RunManifest(
        run_id=run_id,
        command="run",
        experiments=names,
        seed=args.seed,
        config={
            "n_taxis": args.n_taxis,
            "quick": args.quick,
            "trace": args.trace,
            "experiment": args.experiment,
        },
        events_file="events.jsonl",
    )
    manifest.write(out_dir)  # crash-safe: the directory identifies itself early

    started = time.perf_counter()
    summaries: list[dict] = []
    json_payload: list[dict] = []
    with EventLog(out_dir / "events.jsonl") as log:
        tracer = Tracer(sink=log.append, keep_records=False) if args.trace else None

        kinds = {EXPERIMENTS[n][1] for n in names}
        testbeds = {}
        for kind in sorted(kinds):
            if not quiet:
                print(
                    f"# building {kind} testbed ({args.n_taxis} taxis, seed {args.seed})..."
                )
            build_start = time.perf_counter()
            testbeds[kind] = exp.build_testbed(
                n_taxis=args.n_taxis, seed=args.seed, kind=kind
            )
            log.append(
                {
                    "type": "event",
                    "span_id": None,
                    "name": "testbed.built",
                    "kind": kind,
                    "n_taxis": args.n_taxis,
                    "seed": args.seed,
                    "elapsed_seconds": time.perf_counter() - build_start,
                }
            )

        for name in names:
            result, elapsed = _run_one(name, testbeds, tracer=tracer, quick=args.quick)
            csv_name = f"{name}.csv"
            result.save_csv(out_dir / csv_name)
            manifest.artifacts.append(csv_name)
            log.append(
                {
                    "type": "event",
                    "span_id": None,
                    "name": "experiment.end",
                    "experiment": name,
                    "elapsed_seconds": elapsed,
                    "n_rows": len(result.rows),
                }
            )
            summaries.append({"experiment": name, "elapsed_seconds": elapsed})
            if quiet:
                json_payload.append(
                    {
                        "experiment_id": result.experiment_id,
                        "description": result.description,
                        "headers": list(result.headers),
                        "rows": [list(row) for row in result.rows],
                        "extras": result.extras,
                        "elapsed_seconds": elapsed,
                    }
                )
            else:
                print(result.to_table())
                if result.extras:
                    for key, value in sorted(result.extras.items()):
                        print(f"# {key} = {value}")
                print(f"# completed in {elapsed:.1f}s\n")

    manifest.wall_clock_seconds = time.perf_counter() - started
    manifest.write(out_dir)

    if quiet:
        print(
            json.dumps(
                {
                    "run_id": run_id,
                    "out_dir": str(out_dir),
                    "wall_clock_seconds": manifest.wall_clock_seconds,
                    "experiments": json_payload,
                },
                indent=2,
                default=str,
            )
        )
    else:
        if len(names) > 1:
            print("# elapsed per experiment:")
            for entry in summaries:
                print(f"#   {entry['experiment']:<20} {entry['elapsed_seconds']:>8.1f}s")
            print(f"#   {'total':<20} {manifest.wall_clock_seconds:>8.1f}s")
        print(f"# run artifacts: {out_dir}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    run_dir = args.run_dir
    if not run_dir.exists():
        print(f"error: no such run directory: {run_dir}", file=sys.stderr)
        return 2
    report = build_report(run_dir)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, default=str))
    else:
        print(format_report(report))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, (driver, kind) in EXPERIMENTS.items():
            summary = (driver.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<20} [{kind:>8}]  {summary}")
        return 0
    if args.command == "report":
        return _cmd_report(args)
    return _cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
