"""Adaptive multi-round campaigns with Bayesian PoS learning.

The paper assumes users compute their PoS locally and the platform must
elicit it truthfully.  Its future-work section (§VI) asks about verifying
more of the users' private information; this module implements the natural
platform-side counterpart for the PoS dimension: **learn PoS from observed
execution outcomes across repeated campaign rounds**, so a long-running
platform becomes progressively less dependent on declarations.

* :class:`PosLearner` keeps one Beta posterior per (user, task) pair,
  initialised from the users' declarations (treated as a prior with
  configurable strength).  Each executed round contributes its realised
  attempt outcomes as Bernoulli observations.
* :class:`AdaptiveCampaign` runs the loop: clear the auction on the
  learner's current estimates, execute against the *true* types, update,
  repeat.  The posterior mean converges to the truth for users that keep
  being selected — and the learner's error curve quantifies it.

This also closes a robustness gap: a one-shot mechanism must rely on
strategy-proofness alone, whereas a repeated platform can detect systematic
PoS inflation statistically (an inflated declaration keeps losing Bernoulli
trials and the posterior sinks toward the truth).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.errors import InfeasibleInstanceError, ValidationError
from ..core.multi_task import MultiTaskMechanism, MultiTaskOutcome
from ..core.types import AuctionInstance, UserType
from .engine import ExecutionResult, ExecutionSimulator

__all__ = ["BetaBelief", "PosLearner", "RoundRecord", "AdaptiveCampaign"]

#: Estimates are clamped below 1 so contributions stay finite and the
#: mechanisms' validation accepts them.
_MAX_ESTIMATE = 0.95


@dataclass
class BetaBelief:
    """A Beta(a, b) posterior over one (user, task) success probability."""

    a: float
    b: float

    def __post_init__(self) -> None:
        if self.a <= 0 or self.b <= 0:
            raise ValidationError(f"Beta parameters must be positive: ({self.a}, {self.b})")

    @property
    def mean(self) -> float:
        return self.a / (self.a + self.b)

    @property
    def observations(self) -> float:
        return self.a + self.b

    def observe(self, success: bool) -> None:
        if success:
            self.a += 1.0
        else:
            self.b += 1.0


class PosLearner:
    """Per-(user, task) Beta posteriors seeded from declarations.

    Args:
        declared: The declared instance; each declared PoS ``p`` becomes a
            Beta prior with mean ``p`` and total pseudo-count
            ``prior_strength``.
        prior_strength: How many observations the declaration is worth.
            Small values let execution evidence dominate quickly.
    """

    def __init__(self, declared: AuctionInstance, prior_strength: float = 2.0):
        if prior_strength <= 0:
            raise ValidationError(f"prior_strength must be positive: {prior_strength!r}")
        self._tasks = declared.tasks
        self._users = {u.user_id: u for u in declared.users}
        self.beliefs: dict[tuple[int, int], BetaBelief] = {}
        for user in declared.users:
            for task_id, p in user.pos.items():
                # Clamp the prior mean into (0, 1) so both parameters stay
                # positive even for declared 0 or 1.
                mean = min(max(p, 1e-3), 1.0 - 1e-3)
                self.beliefs[(user.user_id, task_id)] = BetaBelief(
                    a=mean * prior_strength, b=(1.0 - mean) * prior_strength
                )

    def estimate(self, user_id: int, task_id: int) -> float:
        """Current posterior-mean PoS estimate (clamped for the mechanisms)."""
        belief = self.beliefs[(user_id, task_id)]
        return min(belief.mean, _MAX_ESTIMATE)

    def estimated_instance(self) -> AuctionInstance:
        """The auction instance the platform would clear *right now*."""
        users = []
        for uid, user in self._users.items():
            pos = {task_id: self.estimate(uid, task_id) for task_id in user.task_set}
            users.append(UserType(uid, cost=user.cost, pos=pos))
        return AuctionInstance(self._tasks, users)

    def update(self, result: ExecutionResult) -> int:
        """Fold one execution's attempt outcomes in; returns #observations."""
        count = 0
        for (uid, task_id), success in result.attempts.items():
            key = (uid, task_id)
            if key in self.beliefs:
                self.beliefs[key].observe(success)
                count += 1
        return count

    def mean_absolute_error(self, truth: AuctionInstance) -> float:
        """Mean |posterior mean − true PoS| over all believed pairs."""
        errors = []
        for (uid, task_id), belief in self.beliefs.items():
            true_pos = truth.user_by_id(uid).pos.get(task_id)
            if true_pos is not None:
                errors.append(abs(belief.mean - true_pos))
        if not errors:
            raise ValidationError("no overlapping (user, task) pairs with the truth")
        return float(np.mean(errors))


@dataclass(frozen=True)
class RoundRecord:
    """One round of an adaptive campaign."""

    round_index: int
    outcome: MultiTaskOutcome = field(repr=False)
    execution: ExecutionResult = field(repr=False)
    estimate_error: float
    social_cost: float
    completion_fraction: float


class AdaptiveCampaign:
    """Repeated campaigns: clear on estimates, execute on truth, learn.

    Args:
        true_instance: The ground-truth types (execution draws from these).
        declared_instance: What users declared (defaults to the truth —
            i.e. truthful declarations — but pass an inflated instance to
            watch the learner correct it).
        alpha: Reward scaling for the per-round mechanism.
        prior_strength: See :class:`PosLearner`.
        seed: Execution RNG seed.
    """

    def __init__(
        self,
        true_instance: AuctionInstance,
        declared_instance: AuctionInstance | None = None,
        alpha: float = 10.0,
        prior_strength: float = 2.0,
        seed: int = 0,
    ):
        self.truth = true_instance
        declared = declared_instance or true_instance
        if {u.user_id for u in declared.users} != {u.user_id for u in true_instance.users}:
            raise ValidationError("declared and true instances must cover the same users")
        self.learner = PosLearner(declared, prior_strength=prior_strength)
        self.mechanism = MultiTaskMechanism(alpha=alpha)
        self.simulator = ExecutionSimulator(seed=seed)
        self.history: list[RoundRecord] = []

    def run_round(self) -> RoundRecord:
        """One clear-execute-learn cycle.

        Raises :class:`InfeasibleInstanceError` if the current estimates
        make the instance uncoverable (possible when beliefs sink far below
        truth early on); callers looping rounds may catch and continue —
        the campaign simply cannot run that round.
        """
        estimated = self.learner.estimated_instance()
        outcome = self.mechanism.run(estimated, compute_rewards=False)
        # Execution uses TRUE types: winners attempt with their real PoS.
        execution = self.simulator.simulate_multi(self.truth, outcome)
        self.learner.update(execution)
        completed = sum(1 for done in execution.task_completed.values() if done)
        record = RoundRecord(
            round_index=len(self.history),
            outcome=outcome,
            execution=execution,
            estimate_error=self.learner.mean_absolute_error(self.truth),
            social_cost=outcome.social_cost,
            completion_fraction=completed / len(execution.task_completed),
        )
        self.history.append(record)
        return record

    def run(self, n_rounds: int) -> list[RoundRecord]:
        """Run ``n_rounds`` cycles, skipping rounds whose estimates are
        infeasible (recorded as gaps — the history only holds run rounds)."""
        if n_rounds <= 0:
            raise ValidationError(f"n_rounds must be positive: {n_rounds!r}")
        for _ in range(n_rounds):
            try:
                self.run_round()
            except InfeasibleInstanceError:
                continue
        return self.history
