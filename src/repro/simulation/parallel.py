"""Parallel, resumable execution of experiment cell grids.

:class:`ExperimentRunner` executes the cells of an
:class:`repro.simulation.experiments.ExperimentGrid` either in-process
(``workers=1`` — the bit-exact reference path) or sharded across a
``ProcessPoolExecutor``.  Cells are dispatched in contiguous chunks to
amortise inter-process overhead; each worker rebuilds the (deterministic)
testbed once per process and returns one payload per cell: the normalised
value dict, a metrics snapshot, optional namespaced trace records, and
timing/pid provenance.

Equality with the serial path is by construction:

* cell seeds live in ``cell.params`` — no shared RNG state crosses cells;
* cell values round-trip through :func:`repro.simulation.checkpoint.
  normalize_values` in **both** paths before aggregation;
* aggregation and metrics merging consume cells in **index order**, no
  matter the order workers finished them.

Checkpoint/resume: give the runner a :class:`repro.simulation.checkpoint.
CheckpointLog` and it records every finished cell; give it the ``completed``
mapping from :func:`~repro.simulation.checkpoint.load_checkpoint` and it
skips those cells, splicing their stored values (and metrics) into the
aggregation as if they had just run.

>>> chunk_indices(5, 2)
[[0, 1], [2, 3], [4]]
>>> default_chunk_size(10, workers=4)
1
>>> default_chunk_size(200, workers=4)
13
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from multiprocessing import resource_tracker

import numpy as np

from ..core.errors import ValidationError
from ..core.obshooks import span
from ..obs.metrics import MetricsRegistry
from ..obs.progress import Heartbeat
from ..obs.tracing import Tracer
from .checkpoint import CellRecord, normalize_values
from .experiments import GRIDS, Cell, ExperimentGrid, default_testbed
from .shm import SharedArrayHandle, SharedArrayPack

__all__ = [
    "ExperimentRunner",
    "chunk_indices",
    "default_chunk_size",
]

# Arrays at or above this many payload bytes default to shared-memory
# hand-off in map_workload(via="auto"); smaller payloads pickle faster
# than a segment round-trips.
_SHM_AUTO_THRESHOLD = 1 << 20


def chunk_indices(n: int, size: int) -> list[list[int]]:
    """Split ``range(n)`` into consecutive chunks of at most ``size``.

    >>> chunk_indices(4, 4)
    [[0, 1, 2, 3]]
    >>> chunk_indices(0, 3)
    []
    """
    return [list(range(i, min(i + size, n))) for i in range(0, n, size)]


def default_chunk_size(n_cells: int, workers: int) -> int:
    """Cells per dispatch chunk: ~4 chunks per worker, at least one cell.

    Small enough that a slow cell cannot strand a whole worker's share
    behind it, large enough that dispatch overhead stays negligible.
    """
    return max(1, math.ceil(n_cells / (workers * 4)))


# --------------------------------------------------------------------- #
# Worker side (module-level for picklability)
# --------------------------------------------------------------------- #

_WORKER_TESTBED_ARGS: tuple[int, int] | None = None


def _worker_init(n_taxis: int, seed: int) -> None:
    """Pool initializer: remember how this worker must build testbeds."""
    global _WORKER_TESTBED_ARGS
    _WORKER_TESTBED_ARGS = (n_taxis, seed)


def _namespace_records(records: list[dict], cell: Cell) -> list[dict]:
    """Rebase a worker tracer's span ids into a per-cell id range.

    Every worker tracer numbers spans from 1, so records from different
    cells would collide in the parent stream.  Offsetting by
    ``(cell.index + 1) * 1_000_000`` keeps ids unique per cell (cells stay
    far below a million spans) and tags each record with its cell.
    """
    offset = (cell.index + 1) * 1_000_000
    namespaced = []
    for record in records:
        rebased = dict(record)
        if rebased.get("span_id") is not None:
            rebased["span_id"] += offset
        if rebased.get("parent_id") is not None:
            rebased["parent_id"] += offset
        rebased.setdefault("experiment", cell.experiment)
        rebased.setdefault("cell", cell.cell_id)
        namespaced.append(rebased)
    return namespaced


def _run_one_cell(
    grid: ExperimentGrid, testbed, cell: Cell, params: dict, tracer, metrics
) -> tuple[dict, float]:
    """Execute one cell; returns (normalised values, wall-clock seconds)."""
    start = time.perf_counter()
    values = normalize_values(
        grid.run_cell(testbed, cell, params, tracer=tracer, metrics=metrics)
    )
    return values, time.perf_counter() - start


def _worker_run_chunk(
    name: str, overrides: dict | None, indices: list[int], trace: bool
) -> list[dict]:
    """Execute a chunk of cells inside a worker process.

    The worker receives only the experiment *name* and the original
    parameter overrides — it re-resolves the grid from :data:`GRIDS` and
    rebuilds the (process-cached, deterministic) testbed itself, so no
    grid or testbed object ever crosses the process boundary.
    """
    n_taxis, seed = _WORKER_TESTBED_ARGS
    grid = GRIDS[name]
    params = grid.resolve(overrides)
    cells = grid.cells(params)
    testbed = default_testbed(n_taxis=n_taxis, seed=seed, kind=grid.testbed_kind)
    payloads = []
    for index in indices:
        cell = cells[index]
        tracer = Tracer(sink=None) if trace else None
        registry = MetricsRegistry()
        values, seconds = _run_one_cell(grid, testbed, cell, params, tracer, registry)
        payloads.append(
            {
                "index": index,
                "cell_id": cell.cell_id,
                "values": values,
                "seconds": seconds,
                "pid": os.getpid(),
                "metrics": registry.to_dict(),
                "events": _namespace_records(tracer.records, cell) if trace else [],
            }
        )
    return payloads


# Per-worker cache of attached shared packs, keyed by segment name, so a
# worker maps each segment once no matter how many slices it processes and
# the views stay valid while the executor pickles the slice results.
# Bounded: old segments are unmapped once the parent has disposed them.
_ATTACHED_PACKS: dict[str, SharedArrayPack] = {}
_MAX_ATTACHED = 4


def _attached_pack(handle: SharedArrayHandle) -> SharedArrayPack:
    pack = _ATTACHED_PACKS.get(handle.shm_name)
    if pack is None:
        while len(_ATTACHED_PACKS) >= _MAX_ATTACHED:
            oldest = next(iter(_ATTACHED_PACKS))
            _ATTACHED_PACKS.pop(oldest).close()
        pack = SharedArrayPack.attach(handle)
        _ATTACHED_PACKS[handle.shm_name] = pack
    return pack


def _worker_map_slice(payload, fn, start: int, stop: int):
    """Run ``fn(arrays, slice)`` in a worker, resolving the array source.

    ``payload`` is either ``("shm", handle)`` — attach (cached) and view —
    or ``("pickle", arrays)`` — the arrays travelled in the task pickle.
    Either way ``fn`` sees the same bytes the parent holds, so serial and
    parallel runs are byte-identical by construction.
    """
    kind, source = payload
    arrays = _attached_pack(source).arrays if kind == "shm" else source
    return fn(arrays, slice(start, stop))


# --------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------- #


class ExperimentRunner:
    """Runs experiment grids serially or across a process pool, resumably.

    The pool is created lazily on the first parallel :meth:`run` and shared
    by subsequent calls (workers keep their testbed caches warm across
    experiments); :meth:`close` — or use as a context manager — shuts it
    down.

    Args:
        workers: Process count; ``1`` (default) runs cells in-process, in
            index order, exactly like :func:`repro.simulation.experiments.
            run_grid`.
        n_taxis: Testbed fleet size (workers rebuild testbeds from this).
        seed: Testbed RNG seed.
        chunk_size: Cells per dispatch chunk (default:
            :func:`default_chunk_size` per experiment).
        tracer: Optional parent tracer.  Serial cells stream into it
            directly; parallel cells trace into per-worker tracers whose
            records are namespaced and absorbed on completion.  Either way
            it receives one ``cell.end`` event per executed cell.
        metrics: Optional parent :class:`~repro.obs.metrics.MetricsRegistry`.
            Each cell runs against a fresh registry (in both modes) whose
            snapshot is merged in cell-index order; the runner additionally
            observes every numeric cell value into an
            ``<experiment>.<key>`` histogram.
        checkpoint: Optional :class:`~repro.simulation.checkpoint.
            CheckpointLog`; every executed cell is appended (and flushed)
            the moment it finishes.
        completed: Optional mapping from :func:`~repro.simulation.
            checkpoint.load_checkpoint`; cells found in it are not
            re-executed.
        backend: Optional :class:`~repro.queue.base.QueueBackend`
            standing in for both ``checkpoint`` and ``completed``:
            executed cells are appended to it, and its
            ``load_completed()`` seeds the skip set.  Mutually exclusive
            with ``checkpoint``; an explicit ``completed`` mapping still
            wins over the backend's.
    """

    def __init__(
        self,
        workers: int = 1,
        n_taxis: int = 250,
        seed: int = 42,
        chunk_size: int | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        checkpoint=None,
        completed: dict[tuple[str, str], CellRecord] | None = None,
        backend=None,
    ):
        if backend is not None and checkpoint is not None:
            raise ValueError("pass either backend= or checkpoint=, not both")
        if backend is not None:
            checkpoint = backend
            if completed is None:
                completed = backend.load_completed()
        self.workers = max(1, int(workers))
        self.n_taxis = n_taxis
        self.seed = seed
        self.chunk_size = chunk_size
        self.tracer = tracer
        self.metrics = metrics
        self.checkpoint = checkpoint
        self.completed = completed or {}
        self._pool: ProcessPoolExecutor | None = None

    # -- lifecycle ----------------------------------------------------- #

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # Start the resource tracker before forking: workers then
            # inherit it, so their shared-memory attach registrations land
            # in the parent's ledger (settled by the creator's unlink)
            # instead of each worker lazily spawning a tracker of its own
            # that would warn about "leaked" segments at shutdown.
            resource_tracker.ensure_running()
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_worker_init,
                initargs=(self.n_taxis, self.seed),
            )
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (if one was started)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution ----------------------------------------------------- #

    def run(self, name: str, overrides: dict | None = None):
        """Execute one experiment grid, skipping checkpointed cells.

        Args:
            name: Grid id in :data:`~repro.simulation.experiments.GRIDS`.
            overrides: Parameter overrides (``None`` values ignored).

        Returns:
            ``(result, stats)`` — the aggregated
            :class:`~repro.simulation.experiments.ExperimentResult` plus a
            dict with ``total`` / ``executed`` / ``skipped`` / ``workers``
            / ``chunk_size`` / ``seconds``, the manifest's per-experiment
            cell provenance.

        Raises:
            KeyError: Unknown experiment name.
            ValueError: Unknown override keys, or a checkpointed cell whose
                recorded parameters differ from this run's (resuming into a
                differently-configured run would silently mix results).
        """
        grid = GRIDS[name]
        params = grid.resolve(overrides)
        cells = grid.cells(params)
        norm_params = normalize_values(params)
        started = time.perf_counter()

        values_by_index: dict[int, dict] = {}
        metrics_by_index: dict[int, dict | None] = {}
        pending: list[Cell] = []
        for cell in cells:
            record = self.completed.get((name, cell.cell_id))
            if record is None:
                pending.append(cell)
                continue
            if record.params != norm_params:
                raise ValueError(
                    f"{name}/{cell.cell_id}: checkpoint was written with different "
                    f"parameters ({record.params!r} != {norm_params!r}); "
                    "resume with the original configuration or start a new run"
                )
            values_by_index[cell.index] = record.values
            metrics_by_index[cell.index] = record.metrics

        chunk = self.chunk_size or default_chunk_size(
            max(len(pending), 1), self.workers
        )
        if pending:
            # One heartbeat per grid: a `cells.progress` event as cells
            # complete (throttled), so a --watch dashboard or --progress
            # console line sees long grids advance.
            beat = (
                Heartbeat(
                    "cells",
                    total=len(pending),
                    tracer=self.tracer,
                    experiment=name,
                )
                if self.tracer is not None
                else None
            )
            if self.workers == 1:
                self._run_serial(
                    grid,
                    pending,
                    params,
                    norm_params,
                    values_by_index,
                    metrics_by_index,
                    beat,
                )
            else:
                self._run_parallel(
                    grid,
                    overrides,
                    pending,
                    norm_params,
                    chunk,
                    values_by_index,
                    metrics_by_index,
                    beat,
                )
            if beat is not None:
                beat.finish()

        self._merge_metrics(name, cells, values_by_index, metrics_by_index)
        ordered = [values_by_index[cell.index] for cell in cells]
        result = grid.aggregate(params, ordered)
        stats = {
            "total": len(cells),
            "executed": len(pending),
            "skipped": len(cells) - len(pending),
            "workers": self.workers,
            "chunk_size": chunk if self.workers > 1 else 1,
            "seconds": round(time.perf_counter() - started, 6),
        }
        return result, stats

    def _finish_cell(
        self,
        cell: Cell,
        norm_params: dict,
        values: dict,
        seconds: float,
        pid: int,
        snapshot: dict,
        values_by_index: dict,
        metrics_by_index: dict,
    ) -> None:
        """Common bookkeeping once a cell's payload is in hand."""
        values_by_index[cell.index] = values
        metrics_by_index[cell.index] = snapshot
        if self.checkpoint is not None:
            self.checkpoint.append(
                CellRecord(
                    experiment=cell.experiment,
                    cell_id=cell.cell_id,
                    index=cell.index,
                    params=norm_params,
                    values=values,
                    seconds=round(seconds, 6),
                    pid=pid,
                    metrics=snapshot,
                )
            )
        if self.tracer is not None:
            self.tracer.event(
                "cell.end",
                experiment=cell.experiment,
                cell=cell.cell_id,
                index=cell.index,
                seconds=seconds,
                pid=pid,
            )

    def _run_serial(
        self,
        grid,
        pending,
        params,
        norm_params,
        values_by_index,
        metrics_by_index,
        beat: Heartbeat | None = None,
    ) -> None:
        testbed = default_testbed(
            n_taxis=self.n_taxis, seed=self.seed, kind=grid.testbed_kind
        )
        for cell in pending:
            registry = MetricsRegistry()
            values, seconds = _run_one_cell(
                grid, testbed, cell, params, self.tracer, registry
            )
            self._finish_cell(
                cell,
                norm_params,
                values,
                seconds,
                os.getpid(),
                registry.to_dict(),
                values_by_index,
                metrics_by_index,
            )
            if beat is not None:
                beat.update()

    def _run_parallel(
        self,
        grid,
        overrides,
        pending,
        norm_params,
        chunk,
        values_by_index,
        metrics_by_index,
        beat: Heartbeat | None = None,
    ) -> None:
        pool = self._ensure_pool()
        by_index = {cell.index: cell for cell in pending}
        order = [cell.index for cell in pending]
        futures = [
            pool.submit(
                _worker_run_chunk,
                grid.experiment_id,
                overrides,
                [order[i] for i in group],
                self.tracer is not None,
            )
            for group in chunk_indices(len(order), chunk)
        ]
        for future in as_completed(futures):
            for payload in future.result():
                cell = by_index[payload["index"]]
                if self.tracer is not None and payload["events"]:
                    self.tracer.absorb(payload["events"])
                self._finish_cell(
                    cell,
                    norm_params,
                    payload["values"],
                    payload["seconds"],
                    payload["pid"],
                    payload["metrics"],
                    values_by_index,
                    metrics_by_index,
                )
                if beat is not None:
                    beat.update()

    # -- workload fan-out ---------------------------------------------- #

    def map_workload(
        self,
        arrays: dict,
        fn,
        n_items: int | None = None,
        via: str = "auto",
        chunk_size: int | None = None,
    ) -> list:
        """Fan ``fn(arrays, slice)`` out over the pool without copying arrays.

        Splits ``range(n_items)`` into contiguous slices and calls
        ``fn(arrays, slice)`` for each — in-process when ``workers == 1``,
        across the pool otherwise.  With ``via="shm"`` the arrays cross the
        process boundary as one :class:`~repro.simulation.shm.
        SharedArrayPack` (a name + layout handle per task, never the
        bytes); ``via="pickle"`` ships them in each task payload;
        ``"auto"`` picks shm once the payload reaches ~1 MiB.  Results come
        back **in slice order** regardless of completion order, so serial
        and parallel runs agree byte for byte.

        Args:
            arrays: ``name -> numpy array``.  ``fn`` receives an equivalent
                mapping (shared views in shm mode — treat as read-only).
            fn: Module-level callable ``fn(arrays, slice) -> result``
                (workers import it by reference, so it must be picklable).
                Results must not alias the passed-in views.
            n_items: Item count to shard; defaults to ``len`` of the first
                array's leading axis.
            via: ``"auto"`` | ``"shm"`` | ``"pickle"``.
            chunk_size: Items per slice (default:
                :func:`default_chunk_size`).

        Returns:
            ``[fn(arrays, s) for s in slices]`` in slice order.
        """
        if via not in ("auto", "shm", "pickle"):
            raise ValidationError(f"unknown via {via!r}")
        if not arrays:
            raise ValidationError("map_workload needs at least one array")
        if n_items is None:
            n_items = int(next(iter(arrays.values())).shape[0])
        if n_items <= 0:
            return []
        chunk = chunk_size or default_chunk_size(n_items, self.workers)
        groups = chunk_indices(n_items, chunk)
        slices = [(g[0], g[-1] + 1) for g in groups]

        if self.workers == 1:
            with span(
                self.tracer, "dispatch.map_workload", via="serial", slices=len(slices)
            ):
                return [fn(arrays, slice(a, b)) for a, b in slices]

        nbytes = sum(int(np.ascontiguousarray(a).nbytes) for a in arrays.values())
        if via == "auto":
            via = "shm" if nbytes >= _SHM_AUTO_THRESHOLD else "pickle"
        pool = self._ensure_pool()
        pack = SharedArrayPack.create(arrays) if via == "shm" else None
        payload = ("shm", pack.handle) if pack is not None else ("pickle", arrays)
        try:
            with span(
                self.tracer,
                "dispatch.map_workload",
                via=via,
                slices=len(slices),
                bytes=nbytes,
            ):
                futures = [
                    pool.submit(_worker_map_slice, payload, fn, a, b)
                    for a, b in slices
                ]
                results: list = [None] * len(futures)
                for position, future in enumerate(futures):
                    results[position] = future.result()
                return results
        finally:
            if pack is not None:
                pack.dispose()

    def _merge_metrics(
        self, name: str, cells, values_by_index, metrics_by_index
    ) -> None:
        """Fold per-cell metrics into the parent registry, in index order."""
        if self.metrics is None:
            return
        for cell in cells:
            snapshot = metrics_by_index.get(cell.index)
            if snapshot:
                self.metrics.merge(snapshot)
            for key, value in sorted(values_by_index[cell.index].items()):
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    self.metrics.histogram(f"{name}.{key}").observe(value)
