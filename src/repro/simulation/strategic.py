"""Strategic-behaviour studies (paper, §III-A and §IV).

Two tools:

* :func:`vcg_counterexample` — the paper's 4-user example showing VCG is
  *not* strategy-proof in the PoS dimension: user 3 (cost 1, true PoS 0.5)
  loses under truthful reporting but wins — with strictly positive utility —
  by inflating her declared PoS to 0.9.
* :func:`deviation_sweep_single` / :func:`deviation_sweep_multi` — expected
  utility of one user as a function of her *declared* PoS, holding her true
  type fixed.  Under the paper's mechanisms the curve is maximised at the
  truth (flat at ``(p − p̄)α`` over the winning region, 0 or negative
  elsewhere); ``examples/strategic_user_study.py`` prints both curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.baselines import vcg_single_task
from ..core.cost_verification import CostReport, CostVerifier
from ..core.errors import InfeasibleInstanceError
from ..core.multi_task import MultiTaskMechanism
from ..core.rewards import expected_utility_multi, expected_utility_single
from ..core.single_task import SingleTaskMechanism
from ..core.transforms import contribution_to_pos, pos_to_contribution
from ..core.types import AuctionInstance, SingleTaskInstance

__all__ = [
    "VcgCounterexample",
    "vcg_counterexample",
    "paper_example_instance",
    "DeviationPoint",
    "deviation_sweep_single",
    "deviation_sweep_multi",
    "CostDeviationPoint",
    "cost_deviation_sweep_single",
]

#: The paper's example types: (cost, PoS) per user, requirement T = 0.9.
PAPER_EXAMPLE_TYPES = ((3.0, 0.7), (2.0, 0.7), (1.0, 0.5), (4.0, 0.8))
PAPER_EXAMPLE_REQUIREMENT = 0.9


def paper_example_instance() -> SingleTaskInstance:
    """The §III-A example as a single-task instance (users 1..4)."""
    costs, pos = zip(*PAPER_EXAMPLE_TYPES)
    return SingleTaskInstance(
        requirement=pos_to_contribution(PAPER_EXAMPLE_REQUIREMENT),
        user_ids=tuple(range(1, 5)),
        costs=tuple(costs),
        contributions=tuple(pos_to_contribution(p) for p in pos),
    )


@dataclass(frozen=True)
class VcgCounterexample:
    """The reproduced §III-A failure of VCG.

    Attributes:
        truthful_winners: VCG winners when everyone reports truthfully.
        truthful_utility_user3: User 3's utility under truth (she loses: 0).
        lying_declared_pos: The PoS user 3 misreports (0.9).
        lying_winners: VCG winners under the misreport.
        lying_utility_user3: User 3's utility from lying — her VCG payment
            minus her cost, strictly positive, proving untruthfulness.
    """

    truthful_winners: frozenset[int]
    truthful_utility_user3: float
    lying_declared_pos: float
    lying_winners: frozenset[int]
    lying_utility_user3: float

    @property
    def vcg_is_truthful(self) -> bool:
        return self.lying_utility_user3 <= self.truthful_utility_user3 + 1e-9


def vcg_counterexample(lying_pos: float = 0.9) -> VcgCounterexample:
    """Reproduce the paper's example: user 3 profits from inflating her PoS.

    Note the misreport changes only the *allocation*; after winning, user 3
    is paid her VCG payment regardless of execution, so her expected utility
    is simply payment − cost.
    """
    truthful = paper_example_instance()
    truthful_outcome = vcg_single_task(truthful)
    u3_truthful = (
        truthful_outcome.payments.get(3, 0.0) - 1.0 if 3 in truthful_outcome.selected else 0.0
    )

    lying = truthful.with_contribution(3, pos_to_contribution(lying_pos))
    lying_outcome = vcg_single_task(lying)
    u3_lying = (
        lying_outcome.payments.get(3, 0.0) - 1.0 if 3 in lying_outcome.selected else 0.0
    )
    return VcgCounterexample(
        truthful_winners=truthful_outcome.selected,
        truthful_utility_user3=u3_truthful,
        lying_declared_pos=lying_pos,
        lying_winners=lying_outcome.selected,
        lying_utility_user3=u3_lying,
    )


@dataclass(frozen=True, slots=True)
class DeviationPoint:
    """One point of a deviation sweep."""

    declared_pos: float
    wins: bool
    expected_utility: float


def deviation_sweep_single(
    instance: SingleTaskInstance,
    user_id: int,
    mechanism: SingleTaskMechanism,
    declared_pos_grid: Sequence[float],
) -> list[DeviationPoint]:
    """Expected utility of ``user_id`` across declared PoS values.

    The user's *true* PoS is the one in ``instance``; utilities are computed
    against it, so the curve shows what each misreport would really earn.
    """
    true_pos = contribution_to_pos(
        instance.contributions[instance.index_of(user_id)]
    )
    points = []
    for declared in declared_pos_grid:
        deviated = instance.with_contribution(user_id, pos_to_contribution(declared))
        try:
            outcome = mechanism.run(deviated)
        except InfeasibleInstanceError:
            points.append(DeviationPoint(declared, False, 0.0))
            continue
        if user_id in outcome.winners:
            utility = expected_utility_single(
                true_pos, outcome.rewards[user_id].critical_pos, mechanism.alpha
            )
            points.append(DeviationPoint(declared, True, utility))
        else:
            points.append(DeviationPoint(declared, False, 0.0))
    return points


def deviation_sweep_multi(
    instance: AuctionInstance,
    user_id: int,
    mechanism: MultiTaskMechanism,
    scale_grid: Sequence[float],
) -> list[DeviationPoint]:
    """Expected utility of ``user_id`` across scalings of her declared profile.

    Deviations scale her *contribution* profile (shape-preserving,
    ``p' = 1 − (1−p)^λ``) — the single-minded magnitude-misreport model.
    ``declared_pos`` in the returned points is the scale factor applied to
    the true profile (1.0 = truthful).
    """
    user = instance.user_by_id(user_id)
    true_total = user.total_contribution()
    points = []
    for factor in scale_grid:
        deviated = instance.with_replaced_user(user.with_scaled_contributions(factor))
        try:
            outcome = mechanism.run(deviated)
        except InfeasibleInstanceError:
            points.append(DeviationPoint(factor, False, 0.0))
            continue
        if user_id in outcome.winners:
            utility = expected_utility_multi(
                true_total,
                outcome.rewards[user_id].critical_contribution,
                mechanism.alpha,
            )
            points.append(DeviationPoint(factor, True, utility))
        else:
            points.append(DeviationPoint(factor, False, 0.0))
    return points


@dataclass(frozen=True, slots=True)
class CostDeviationPoint:
    """One point of a cost-misreport sweep (paper, §III-A / §VI)."""

    cost_factor: float
    wins: bool
    expected_utility_unaudited: float
    expected_utility_audited: float


def cost_deviation_sweep_single(
    instance: SingleTaskInstance,
    user_id: int,
    mechanism: SingleTaskMechanism,
    cost_factors: Sequence[float],
    verifier: CostVerifier | None = None,
) -> list[CostDeviationPoint]:
    """Expected utility of a user misreporting her COST, with/without audits.

    The paper makes truthfulness tractable by *assuming costs verifiable*
    (§III-A) and defers joint cost-and-PoS strategy-proofness to future
    work.  This sweep shows why the assumption is load-bearing: the EC
    reward contains an additive ``+c_declared`` term, so a winner who
    inflates her declared cost and still wins pockets the difference —
    unless the :class:`~repro.core.cost_verification.CostVerifier` audits
    her measured cost and claws the reward back.

    Both expected utilities are computed against the user's *true* cost and
    true PoS.  ``expected_utility_audited`` applies the verifier's policy
    (the truthful measured cost is assumed observable post-execution).
    """
    audit = verifier or CostVerifier()
    idx = instance.index_of(user_id)
    true_cost = instance.costs[idx]
    true_pos = contribution_to_pos(instance.contributions[idx])

    points: list[CostDeviationPoint] = []
    for factor in cost_factors:
        declared_cost = true_cost * factor
        costs = list(instance.costs)
        costs[idx] = declared_cost
        deviated = SingleTaskInstance(
            instance.requirement, instance.user_ids, tuple(costs), instance.contributions
        )
        try:
            outcome = mechanism.run(deviated)
        except InfeasibleInstanceError:
            points.append(CostDeviationPoint(factor, False, 0.0, 0.0))
            continue
        if user_id not in outcome.winners:
            points.append(CostDeviationPoint(factor, False, 0.0, 0.0))
            continue
        contract = outcome.rewards[user_id]
        # Expected reward = (p - p_bar) * alpha + c_declared.
        expected_reward = (
            true_pos * contract.success_reward
            + (1.0 - true_pos) * contract.failure_reward
        )
        unaudited = expected_reward - true_cost
        verdict = audit.audit(
            CostReport(user_id, declared_cost=declared_cost, measured_cost=true_cost),
            reward=expected_reward,
        )
        audited = verdict.adjusted_reward - true_cost
        points.append(CostDeviationPoint(factor, True, unaudited, audited))
    return points
