"""Platform operations: the full campaign lifecycle in one orchestrator.

The paper specifies the auction (Figure 1, steps 2–6); a deployed platform
additionally executes, audits, settles, and archives.  :class:`Campaign`
composes the library's pieces into that lifecycle:

1. **clear** — run the strategy-proof auction on the declared instance
   (:class:`~repro.core.auction.CrowdsensingAuction` dispatch);
2. **execute** — Bernoulli execution against the *true* types
   (:class:`~repro.simulation.engine.ExecutionSimulator`);
3. **audit** — verify declared costs against measured ones and apply the
   punishment policy (:class:`~repro.core.cost_verification.CostVerifier`,
   the paper's §III-A assumption made operational);
4. **settle** — pay the post-audit rewards and account platform spend
   against the budget;
5. **archive** — emit a JSON-ready record of the round
   (:mod:`repro.core.serialization`).

The orchestrator is deliberately stateless between rounds except for its
ledger; for *learning* across rounds see
:class:`~repro.simulation.adaptive.AdaptiveCampaign`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.auction import CrowdsensingAuction
from ..core.cost_verification import CostReport, CostVerifier
from ..core.errors import ValidationError
from ..core.multi_task import MultiTaskOutcome
from ..core.serialization import outcome_to_dict
from ..core.single_task import SingleTaskOutcome
from ..core.types import AuctionInstance, single_task_view
from .engine import ExecutionResult, ExecutionSimulator

__all__ = ["SettlementLedger", "CampaignRecord", "Campaign"]


@dataclass
class SettlementLedger:
    """Running account of what the platform has paid out."""

    budget: float
    spent: float = 0.0
    fines_collected: float = 0.0
    rounds_settled: int = 0

    @property
    def remaining(self) -> float:
        return self.budget - self.spent + self.fines_collected

    def record(self, payments: dict[int, float]) -> None:
        for amount in payments.values():
            if amount >= 0:
                self.spent += amount
            else:
                self.fines_collected += -amount
        self.rounds_settled += 1


@dataclass(frozen=True)
class CampaignRecord:
    """Everything one campaign round produced."""

    outcome: SingleTaskOutcome | MultiTaskOutcome = field(repr=False)
    execution: ExecutionResult = field(repr=False)
    payments: dict[int, float]
    flagged_users: frozenset[int]
    tasks_completed: int
    archive: dict[str, Any] = field(repr=False)


class Campaign:
    """One platform running sensing campaigns end to end.

    Args:
        true_instance: Ground-truth types (execution and cost measurement
            draw from these).
        declared_instance: What users declared; defaults to the truth.
        budget: Total reward budget across rounds.
        alpha: Reward scaling factor for the EC contracts.
        verifier: Cost-audit policy (defaults to a 10%-tolerance verifier).
        seed: Execution RNG seed.
    """

    def __init__(
        self,
        true_instance: AuctionInstance,
        declared_instance: AuctionInstance | None = None,
        budget: float = 1_000.0,
        alpha: float = 10.0,
        verifier: CostVerifier | None = None,
        seed: int = 0,
    ):
        if budget <= 0:
            raise ValidationError(f"budget must be positive, got {budget!r}")
        self.truth = true_instance
        self.declared = declared_instance or true_instance
        truth_ids = {u.user_id for u in true_instance.users}
        declared_ids = {u.user_id for u in self.declared.users}
        if truth_ids != declared_ids:
            raise ValidationError("declared and true instances must cover the same users")
        self.alpha = alpha
        self.verifier = verifier or CostVerifier()
        self.ledger = SettlementLedger(budget=budget)
        self._simulator = ExecutionSimulator(seed=seed)
        self.history: list[CampaignRecord] = []

    # ------------------------------------------------------------------ #

    def _clear(self) -> SingleTaskOutcome | MultiTaskOutcome:
        auction = CrowdsensingAuction(self.declared.tasks, alpha=self.alpha)
        for user in self.declared.users:
            auction.submit_bid(user)
        return auction.clear()

    def _execute(
        self, outcome: SingleTaskOutcome | MultiTaskOutcome
    ) -> ExecutionResult:
        if isinstance(outcome, SingleTaskOutcome):
            task_id = self.truth.tasks[0].task_id
            view = single_task_view(self.truth, task_id)
            return self._simulator.simulate_single(view, outcome, task_id=task_id)
        return self._simulator.simulate_multi(self.truth, outcome)

    def run_round(self) -> CampaignRecord:
        """Clear → execute → audit → settle → archive one round.

        Raises :class:`ValidationError` when the remaining budget cannot
        cover the round's worst-case settlement — a platform must never
        enter contracts it cannot honour.
        """
        outcome = self._clear()
        worst_case = sum(c.success_reward for c in outcome.rewards.values())
        if worst_case > self.ledger.remaining + 1e-9:
            raise ValidationError(
                f"worst-case settlement {worst_case:.6g} exceeds remaining "
                f"budget {self.ledger.remaining:.6g}"
            )

        execution = self._execute(outcome)

        # Audit: measured cost is the user's true cost (the platform's
        # §III-A monitoring); declared is what she bid.
        reports = []
        for uid in outcome.winners:
            reports.append(
                CostReport(
                    uid,
                    declared_cost=self.declared.user_by_id(uid).cost,
                    measured_cost=self.truth.user_by_id(uid).cost,
                )
            )
        audits = self.verifier.audit_all(reports, execution.rewards_paid)
        payments = {uid: audit.adjusted_reward for uid, audit in audits.items()}
        flagged = frozenset(uid for uid, audit in audits.items() if not audit.honest)

        self.ledger.record(payments)
        record = CampaignRecord(
            outcome=outcome,
            execution=execution,
            payments=payments,
            flagged_users=flagged,
            tasks_completed=sum(
                1 for done in execution.task_completed.values() if done
            ),
            archive=outcome_to_dict(outcome),
        )
        self.history.append(record)
        return record

    def run(self, n_rounds: int) -> list[CampaignRecord]:
        """Run rounds until done or the budget guard stops the campaign."""
        if n_rounds <= 0:
            raise ValidationError(f"n_rounds must be positive, got {n_rounds!r}")
        for _ in range(n_rounds):
            try:
                self.run_round()
            except ValidationError:
                break  # budget exhausted: stop cleanly with history intact
        return self.history
