"""Experiment drivers: one function per paper table/figure (paper, §IV).

Every driver returns an :class:`ExperimentResult` — experiment id, column
headers, and the same rows/series the paper's figure plots — which the
benchmark harness prints and EXPERIMENTS.md records.  Drivers share a
:class:`Testbed` (synthetic fleet → learned mobility model → workload
generator) built once per process via :func:`default_testbed`.

Driver ↔ paper map:

==========================  ==========================================
:func:`run_fig3`            location-prediction accuracy vs ``m``
:func:`run_fig4`            PDF of predicted PoS
:func:`run_fig5a`           single-task social cost vs #users
:func:`run_fig5b`           multi-task social cost vs #users (Table III/1)
:func:`run_fig5c`           multi-task social cost vs #tasks (Table III/2)
:func:`run_fig6`            empirical CDF of winners' expected utilities
:func:`run_fig7`            achieved vs required task PoS (incl. *-VCG)
:func:`run_fig8`            #selected users vs PoS requirement
:func:`run_fig9`            social cost vs PoS requirement
:func:`run_sweep_single`    single-task FPTAS sweep (SeedSequence cells)
==========================  ==========================================

plus three ablations (``run_ablation_epsilon``, ``run_ablation_delta_q``,
``run_ablation_smoothing``) for the design choices DESIGN.md calls out.

Cell grids
----------
Each experiment is also exposed as an :class:`ExperimentGrid` in the
:data:`GRIDS` registry: a declarative decomposition into independent
*cells* (one parameter point × repetition, each with an explicit seed)
that the parallel runner (:mod:`repro.simulation.parallel`) can shard
across worker processes and checkpoint per cell.  The ``run_fig*``
functions are thin wrappers over :func:`run_grid`, which executes the
cells serially **in index order** — the same instance seeds, the same
float-accumulation order, hence bit-identical output to the pre-grid
loops.  Experiments whose structure is a single indivisible computation
(fig3, fig4, the ablations) are wrapped by :class:`SingleCellGrid`.

>>> sorted(GRIDS)[:3]
['ablation-delta-q', 'ablation-epsilon', 'ablation-smoothing']
>>> GRIDS["fig5a"].resolve({"repeats": 1})["repeats"]
1
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..analysis.stats import empirical_cdf, histogram_pdf
from ..analysis.tables import format_table
from ..core.baselines import (
    min_greedy_single_task,
    mt_vcg,
    optimal_multi_task,
    optimal_single_task,
    st_vcg,
)
from ..core.fptas import fptas_min_knapsack
from ..core.multi_task import MultiTaskMechanism
from ..core.obshooks import span as _span
from ..core.rewards import expected_utility_multi, expected_utility_single
from ..core.single_task import SingleTaskMechanism
from ..core.submodular import gamma_parameter, greedy_approximation_bound
from ..core.transforms import achieved_pos, contribution_to_pos
from ..mobility.dataset import TraceDataset
from ..mobility.grid import CityGrid
from ..mobility.markov import MarkovMobilityModel
from ..mobility.prediction import predicted_pos_samples, prediction_accuracy
from ..mobility.synthetic import FleetConfig, SyntheticTaxiFleet
from ..workload.config import SimulationConfig
from ..workload.generator import WorkloadGenerator
from .checkpoint import normalize_values, spawn_cell_seeds

__all__ = [
    "ExperimentResult",
    "Testbed",
    "build_testbed",
    "default_testbed",
    "Cell",
    "ExperimentGrid",
    "SingleCellGrid",
    "GRIDS",
    "run_grid",
    "run_fig3",
    "run_fig4",
    "run_fig5a",
    "run_fig5b",
    "run_fig5c",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_sweep_single",
    "run_ablation_epsilon",
    "run_ablation_delta_q",
    "run_ablation_smoothing",
]


@dataclass(frozen=True)
class ExperimentResult:
    """A reproduced table/figure: id, columns, and data rows.

    Attributes:
        experiment_id: Stable identifier (e.g. ``"fig5a"``).
        description: One-line human-readable summary.
        headers: Column names, one per row element.
        rows: The data rows, in plot order.
        extras: Scalar side-products (sample counts, parameters) that the
            CSV writer emits as ``# key = value`` trailer comments.
    """

    experiment_id: str
    description: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    extras: dict = field(default_factory=dict)

    def to_table(self, precision: int = 3) -> str:
        """Render the rows as an aligned text table.

        Args:
            precision: Decimal places for float cells.

        Returns:
            The formatted table, title line included.
        """
        return format_table(
            self.headers,
            self.rows,
            precision=precision,
            title=f"[{self.experiment_id}] {self.description}",
        )

    def column(self, name: str) -> list:
        """Extract one column by header name.

        Raises:
            ValueError: If ``name`` is not in :attr:`headers`.
        """
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def to_csv(self) -> str:
        """The series as CSV text (plot-ready; extras become # comments)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        for row in self.rows:
            writer.writerow(row)
        for key, value in sorted(self.extras.items()):
            buffer.write(f"# {key} = {value}\n")
        return buffer.getvalue()

    def save_csv(self, path) -> None:
        """Write :meth:`to_csv` output to a file."""
        with open(path, "w", newline="") as handle:
            handle.write(self.to_csv())


@dataclass(frozen=True)
class Testbed:
    """The shared evaluation substrate: fleet, trace, model, generator."""

    grid: CityGrid
    fleet: SyntheticTaxiFleet
    dataset: TraceDataset
    model: MarkovMobilityModel
    generator: WorkloadGenerator
    seed: int


def build_testbed(
    n_taxis: int = 250,
    seed: int = 42,
    kind: str = "dense",
    events_per_taxi: int = 240,
    smoothing: str = "laplace",
    config: SimulationConfig | None = None,
) -> Testbed:
    """Build a testbed: synthetic fleet → trace → learned model → generator.

    Fully deterministic in its arguments — the parallel runner relies on
    this to rebuild byte-identical testbeds inside worker processes.

    Two fleet kinds, mirroring how the paper uses its dataset:

    * ``"citywide"`` — taxis spread over the whole city with small local
      supports; calibrated so the *learned model* statistics match Figures
      3 and 4 (top-9 accuracy ≈ 0.9, PoS mass below 0.2).  Used by the
      mobility-model experiments.
    * ``"dense"`` — taxis homed in a small downtown area with large,
      heavily overlapping supports.  This reproduces the auction workload
      shape the paper's Tables II/III imply: task bundles of size 10–20
      drawn from a common pool, with enough candidate users per location
      for the 100-user sweeps.  (The paper's real fleet of 1,692 taxis is
      naturally dense downtown.)  Used by all auction experiments.

    Args:
        n_taxis: Fleet size.
        seed: RNG seed for fleet synthesis and the workload generator.
        kind: ``"dense"`` or ``"citywide"`` (see above).
        events_per_taxi: Trace length per taxi (``"dense"`` enforces a
            floor of 400 so supports are well-estimated).
        smoothing: Transition-probability estimator for the Markov model.
        config: Optional workload-generation config override.

    Returns:
        The assembled :class:`Testbed`.

    Raises:
        ValueError: On an unknown ``kind``.
    """
    if kind not in ("dense", "citywide"):
        raise ValueError(f"unknown testbed kind {kind!r}")
    grid = CityGrid()
    if kind == "dense":
        fleet_config = FleetConfig(
            n_taxis=n_taxis,
            events_per_taxi=max(events_per_taxi, 400),
            region_radius_cells=2,
            home_radius_cells=2,
            support_size_range=(18, 24),
        )
    else:
        fleet_config = FleetConfig(n_taxis=n_taxis, events_per_taxi=events_per_taxi)
    fleet = SyntheticTaxiFleet(grid, fleet_config, seed=seed)
    dataset = TraceDataset.from_records(fleet.generate_records(), grid)
    model = MarkovMobilityModel.from_sequences(dataset.train, smoothing=smoothing)
    generator = WorkloadGenerator(model, config=config, seed=seed)
    return Testbed(
        grid=grid, fleet=fleet, dataset=dataset, model=model, generator=generator, seed=seed
    )


_TESTBED_CACHE: dict[tuple, Testbed] = {}


def default_testbed(
    n_taxis: int = 250, seed: int = 42, kind: str = "dense"
) -> Testbed:
    """Process-cached standard testbed (building one takes a few seconds)."""
    key = (n_taxis, seed, kind)
    if key not in _TESTBED_CACHE:
        _TESTBED_CACHE[key] = build_testbed(n_taxis=n_taxis, seed=seed, kind=kind)
    return _TESTBED_CACHE[key]


# --------------------------------------------------------------------- #
# Cell-grid framework
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Cell:
    """One independently executable unit of an experiment.

    A cell is a single (parameter point × repetition) with every seed it
    needs pinned in :attr:`params` — running it requires nothing beyond a
    testbed and the experiment's resolved parameters, which is what makes
    cells shardable across processes and resumable from a checkpoint.

    Attributes:
        experiment: The owning grid's id (e.g. ``"fig5a"``).
        index: Position in the grid's canonical order.  Aggregation
            consumes cell values in this order, so float accumulation is
            identical no matter which process computed which cell.
        cell_id: Stable human-readable id, unique within the experiment
            (e.g. ``"n20-rep1"``); the checkpoint key.
        params: Per-cell parameters (sizes, repetition index, seed).
    """

    experiment: str
    index: int
    cell_id: str
    params: dict = field(default_factory=dict)


class ExperimentGrid:
    """Declarative decomposition of one experiment into independent cells.

    Subclasses define the experiment's parameter schema (:meth:`defaults`),
    its cell enumeration (:meth:`cells`), the per-cell computation
    (:meth:`run_cell`), and the order-preserving reduction back to an
    :class:`ExperimentResult` (:meth:`aggregate`).  The contract that makes
    parallel == serial:

    * cells are **independent** — :meth:`run_cell` derives all randomness
      from seeds recorded in ``cell.params`` (never from shared RNG state);
    * cell values are **JSON-serialisable** — they cross process and
      checkpoint boundaries via :func:`repro.simulation.checkpoint.
      normalize_values`;
    * :meth:`aggregate` consumes values **in cell-index order** and uses
      the same accumulation expressions as the original serial loop.
    """

    #: Grid id; also the :data:`GRIDS` registry key.
    experiment_id: str = ""
    #: Which :func:`build_testbed` kind the experiment needs.
    testbed_kind: str = "dense"

    def defaults(self) -> dict:
        """The experiment's full parameter schema with default values."""
        raise NotImplementedError

    def resolve(self, overrides: dict | None = None) -> dict:
        """Merge ``overrides`` into :meth:`defaults`.

        Args:
            overrides: Parameter overrides; ``None``-valued entries are
                ignored (callers can pass optional knobs unconditionally).

        Returns:
            The resolved parameter dict.

        Raises:
            ValueError: If ``overrides`` contains a key the schema does
                not define — catching typos before hours of compute.
        """
        params = dict(self.defaults())
        extra = {k: v for k, v in dict(overrides or {}).items() if v is not None}
        unknown = sorted(set(extra) - set(params))
        if unknown:
            raise ValueError(
                f"{self.experiment_id}: unknown parameter(s) {unknown}; "
                f"known: {sorted(params)}"
            )
        params.update(extra)
        return params

    def cells(self, params: dict) -> tuple[Cell, ...]:
        """Enumerate the grid's cells, in canonical (index) order."""
        raise NotImplementedError

    def run_cell(
        self, testbed: Testbed, cell: Cell, params: dict, tracer=None, metrics=None
    ) -> dict:
        """Execute one cell.

        Args:
            testbed: The shared evaluation substrate.
            cell: The cell to run (seeds live in ``cell.params``).
            params: The experiment's resolved parameters.
            tracer: Optional duck-typed :class:`repro.obs.tracing.Tracer`.
            metrics: Optional :class:`repro.obs.metrics.MetricsRegistry`
                receiving auction-level observations.

        Returns:
            JSON-serialisable value dict, consumed by :meth:`aggregate`.
        """
        raise NotImplementedError

    def aggregate(self, params: dict, values: list[dict]) -> ExperimentResult:
        """Reduce per-cell values (in cell-index order) to the result.

        Args:
            params: The experiment's resolved parameters.
            values: One normalised value dict per cell, ordered by
                ``cell.index``.

        Returns:
            The same :class:`ExperimentResult` the serial driver produces.
        """
        raise NotImplementedError


class SingleCellGrid(ExperimentGrid):
    """Adapter exposing an indivisible legacy driver as a one-cell grid.

    Used for experiments whose computation cannot be sharded (fig3/fig4
    evaluate one learned model over the whole held-out set; the ablations
    compare estimators on shared instances).  The single cell runs the
    wrapped driver and serialises its :class:`ExperimentResult`.
    """

    def __init__(self, experiment_id: str, driver, testbed_kind: str):
        self.experiment_id = experiment_id
        self.testbed_kind = testbed_kind
        self._driver = driver

    def defaults(self) -> dict:
        signature = inspect.signature(self._driver)
        return {
            name: parameter.default
            for name, parameter in signature.parameters.items()
            if name not in ("testbed", "tracer")
            and parameter.default is not inspect.Parameter.empty
        }

    def cells(self, params: dict) -> tuple[Cell, ...]:
        return (Cell(self.experiment_id, 0, "all", {}),)

    def run_cell(self, testbed, cell, params, tracer=None, metrics=None) -> dict:
        kwargs = dict(params)
        if tracer is not None and "tracer" in inspect.signature(self._driver).parameters:
            kwargs["tracer"] = tracer
        result = self._driver(testbed, **kwargs)
        return {
            "experiment_id": result.experiment_id,
            "description": result.description,
            "headers": list(result.headers),
            "rows": [list(row) for row in result.rows],
            "extras": dict(result.extras),
        }

    def aggregate(self, params: dict, values: list[dict]) -> ExperimentResult:
        (value,) = values
        return ExperimentResult(
            experiment_id=value["experiment_id"],
            description=value["description"],
            headers=tuple(value["headers"]),
            rows=tuple(tuple(row) for row in value["rows"]),
            extras=dict(value["extras"]),
        )


def run_grid(
    grid: ExperimentGrid,
    testbed: Testbed | None = None,
    overrides: dict | None = None,
    tracer=None,
    metrics=None,
) -> ExperimentResult:
    """Execute a grid serially, cell by cell, in index order.

    This is the reference execution path the ``run_fig*`` wrappers use; the
    parallel runner must (and its tests assert it does) produce the same
    result.  Values are normalised through the checkpoint JSON round-trip
    even here, so serial, parallel, and resumed runs aggregate identically
    typed values.

    Args:
        grid: The experiment grid to run.
        testbed: Testbed override (defaults to the grid's standard one).
        overrides: Parameter overrides (see :meth:`ExperimentGrid.resolve`).
        tracer: Optional tracer threaded into every cell.
        metrics: Optional metrics registry threaded into every cell.

    Returns:
        The aggregated :class:`ExperimentResult`.
    """
    tb = testbed or default_testbed(kind=grid.testbed_kind)
    params = grid.resolve(overrides)
    values = [
        normalize_values(grid.run_cell(tb, cell, params, tracer=tracer, metrics=metrics))
        for cell in grid.cells(params)
    ]
    return grid.aggregate(params, values)


def _chunked(values: list, size: int) -> list[list]:
    """Split ``values`` into consecutive groups of ``size`` (cell order)."""
    return [values[i : i + size] for i in range(0, len(values), size)]


def _mean(values: list) -> float:
    """``float(np.mean(...))`` — the exact reduction the serial loops used."""
    return float(np.mean(values))


# --------------------------------------------------------------------- #
# Figures 3 & 4 — mobility model evaluation
# --------------------------------------------------------------------- #


def run_fig3(
    testbed: Testbed | None = None, m_values: Sequence[int] = tuple(range(3, 16))
) -> ExperimentResult:
    """Figure 3: top-``m`` next-location prediction accuracy, m = 3..15.

    Args:
        testbed: Citywide testbed (defaults to the standard one).
        m_values: Prediction-list sizes to evaluate.

    Returns:
        Rows of ``(m, accuracy)``; ``accuracy_at_9`` in extras.
    """
    tb = testbed or default_testbed(kind="citywide")
    accuracy = prediction_accuracy(tb.model, tb.dataset.held_out, m_values)
    rows = tuple((m, accuracy[m]) for m in m_values)
    return ExperimentResult(
        experiment_id="fig3",
        description="location prediction accuracy vs #predicted locations",
        headers=("m", "accuracy"),
        rows=rows,
        extras={"accuracy_at_9": accuracy.get(9)},
    )


def run_fig4(testbed: Testbed | None = None, bins: int = 20) -> ExperimentResult:
    """Figure 4: empirical PDF of predicted PoS values.

    Args:
        testbed: Citywide testbed (defaults to the standard one).
        bins: Histogram bin count over ``[0, 1]``.

    Returns:
        Rows of ``(pos_bin_center, density)``; sample statistics in extras.
    """
    tb = testbed or default_testbed(kind="citywide")
    samples = predicted_pos_samples(tb.model)
    centers, density = histogram_pdf(samples, bins=bins, value_range=(0.0, 1.0))
    rows = tuple((float(c), float(d)) for c, d in zip(centers, density))
    arr = np.asarray(samples)
    return ExperimentResult(
        experiment_id="fig4",
        description="PDF of predicted PoS",
        headers=("pos_bin_center", "density"),
        rows=rows,
        extras={
            "n_samples": len(samples),
            "fraction_below_0.2": float((arr <= 0.2).mean()),
            "mean_pos": float(arr.mean()),
        },
    )


# --------------------------------------------------------------------- #
# Figure 5 — social cost (cell grids)
# --------------------------------------------------------------------- #


class _Fig5aGrid(ExperimentGrid):
    """Single-task social cost vs #users: one cell per (n_users, rep)."""

    experiment_id = "fig5a"
    testbed_kind = "dense"

    def defaults(self) -> dict:
        return {
            "n_users_list": tuple(range(20, 101, 10)),
            "epsilon": 0.5,
            "repeats": 3,
        }

    def cells(self, params: dict) -> tuple[Cell, ...]:
        return tuple(
            Cell("fig5a", index, f"n{n}-rep{rep}", {"n_users": int(n), "rep": rep})
            for index, (n, rep) in enumerate(
                (n, rep)
                for n in params["n_users_list"]
                for rep in range(params["repeats"])
            )
        )

    def run_cell(self, testbed, cell, params, tracer=None, metrics=None) -> dict:
        n, rep = cell.params["n_users"], cell.params["rep"]
        generated = testbed.generator.single_task_instance(n, seed=1000 * rep + n)
        instance = generated.instance
        with _span(
            tracer, "winner_determination", algorithm="fptas", n_users=n, rep=rep
        ):
            fptas_cost = fptas_min_knapsack(instance, params["epsilon"]).total_cost
        return {
            "fptas": fptas_cost,
            "opt": optimal_single_task(instance).total_cost,
            "min_greedy": min_greedy_single_task(instance).total_cost,
        }

    def aggregate(self, params: dict, values: list[dict]) -> ExperimentResult:
        rows = tuple(
            (
                int(n),
                _mean([v["fptas"] for v in group]),
                _mean([v["opt"] for v in group]),
                _mean([v["min_greedy"] for v in group]),
            )
            for n, group in zip(
                params["n_users_list"], _chunked(values, params["repeats"])
            )
        )
        return ExperimentResult(
            experiment_id="fig5a",
            description=f"single-task social cost vs #users (epsilon={params['epsilon']})",
            headers=("n_users", "fptas", "opt", "min_greedy"),
            rows=rows,
            extras={"epsilon": params["epsilon"], "repeats": params["repeats"]},
        )


class _Fig5bGrid(ExperimentGrid):
    """Multi-task social cost vs #users: one cell per (n_users, rep)."""

    experiment_id = "fig5b"
    testbed_kind = "dense"

    def defaults(self) -> dict:
        return {
            "n_users_list": tuple(range(10, 101, 10)),
            "n_tasks": 15,
            "repeats": 3,
        }

    def cells(self, params: dict) -> tuple[Cell, ...]:
        return tuple(
            Cell("fig5b", index, f"n{n}-rep{rep}", {"n_users": int(n), "rep": rep})
            for index, (n, rep) in enumerate(
                (n, rep)
                for n in params["n_users_list"]
                for rep in range(params["repeats"])
            )
        )

    def run_cell(self, testbed, cell, params, tracer=None, metrics=None) -> dict:
        n, rep = cell.params["n_users"], cell.params["rep"]
        generated = testbed.generator.multi_task_instance(
            n, params["n_tasks"], seed=2000 * rep + n
        )
        outcome = MultiTaskMechanism().run(
            generated.instance, compute_rewards=False, tracer=tracer
        )
        if metrics is not None:
            metrics.observe_outcome(outcome)
        return {
            "greedy": outcome.social_cost,
            "opt": optimal_multi_task(generated.instance).total_cost,
        }

    def aggregate(self, params: dict, values: list[dict]) -> ExperimentResult:
        rows = tuple(
            (
                int(n),
                _mean([v["greedy"] for v in group]),
                _mean([v["opt"] for v in group]),
            )
            for n, group in zip(
                params["n_users_list"], _chunked(values, params["repeats"])
            )
        )
        return ExperimentResult(
            experiment_id="fig5b",
            description=f"multi-task social cost vs #users ({params['n_tasks']} tasks)",
            headers=("n_users", "greedy", "opt"),
            rows=rows,
            extras={"n_tasks": params["n_tasks"], "repeats": params["repeats"]},
        )


class _Fig5cGrid(ExperimentGrid):
    """Multi-task social cost vs #tasks: one cell per (n_tasks, rep)."""

    experiment_id = "fig5c"
    testbed_kind = "dense"

    def defaults(self) -> dict:
        return {
            "n_tasks_list": tuple(range(10, 51, 5)),
            "n_users": 30,
            "repeats": 3,
        }

    def cells(self, params: dict) -> tuple[Cell, ...]:
        return tuple(
            Cell("fig5c", index, f"t{t}-rep{rep}", {"n_tasks": int(t), "rep": rep})
            for index, (t, rep) in enumerate(
                (t, rep)
                for t in params["n_tasks_list"]
                for rep in range(params["repeats"])
            )
        )

    def run_cell(self, testbed, cell, params, tracer=None, metrics=None) -> dict:
        t, rep = cell.params["n_tasks"], cell.params["rep"]
        generated = testbed.generator.multi_task_instance(
            params["n_users"], t, seed=3000 * rep + t
        )
        outcome = MultiTaskMechanism().run(
            generated.instance, compute_rewards=False, tracer=tracer
        )
        if metrics is not None:
            metrics.observe_outcome(outcome)
        return {
            "greedy": outcome.social_cost,
            "opt": optimal_multi_task(generated.instance).total_cost,
        }

    def aggregate(self, params: dict, values: list[dict]) -> ExperimentResult:
        rows = tuple(
            (
                int(t),
                _mean([v["greedy"] for v in group]),
                _mean([v["opt"] for v in group]),
            )
            for t, group in zip(
                params["n_tasks_list"], _chunked(values, params["repeats"])
            )
        )
        return ExperimentResult(
            experiment_id="fig5c",
            description=f"multi-task social cost vs #tasks ({params['n_users']} users)",
            headers=("n_tasks", "greedy", "opt"),
            rows=rows,
            extras={"n_users": params["n_users"], "repeats": params["repeats"]},
        )


# --------------------------------------------------------------------- #
# Figure 6 — winners' expected utilities (cell grid)
# --------------------------------------------------------------------- #


class _Fig6Grid(ExperimentGrid):
    """Expected-utility CDFs: one cell per single-task run plus one multi."""

    experiment_id = "fig6"
    testbed_kind = "dense"

    def defaults(self) -> dict:
        return {
            "alpha": 10.0,
            "single_task_runs": 6,
            "single_task_users": 40,
            "multi_task_users": 60,
            "multi_task_tasks": 30,
        }

    def cells(self, params: dict) -> tuple[Cell, ...]:
        singles = tuple(
            Cell("fig6", rep, f"single-rep{rep}", {"setting": "single", "rep": rep})
            for rep in range(params["single_task_runs"])
        )
        multi = Cell(
            "fig6", params["single_task_runs"], "multi", {"setting": "multi", "rep": 0}
        )
        return singles + (multi,)

    def run_cell(self, testbed, cell, params, tracer=None, metrics=None) -> dict:
        alpha = params["alpha"]
        if cell.params["setting"] == "single":
            rep = cell.params["rep"]
            mech = SingleTaskMechanism(alpha=alpha, tolerance=1e-6)
            generated = testbed.generator.single_task_instance(
                params["single_task_users"], seed=4000 + rep
            )
            outcome = mech.run(generated.instance, tracer=tracer)
            if metrics is not None:
                metrics.observe_outcome(outcome)
            utilities = []
            for uid in outcome.winners:
                true_pos = contribution_to_pos(
                    generated.instance.contributions[generated.instance.index_of(uid)]
                )
                utilities.append(
                    expected_utility_single(
                        true_pos, outcome.rewards[uid].critical_pos, alpha
                    )
                )
            return {"utilities": utilities}

        mech = MultiTaskMechanism(alpha=alpha)
        generated = testbed.generator.multi_task_instance(
            params["multi_task_users"], params["multi_task_tasks"], seed=4500
        )
        outcome = mech.run(generated.instance, tracer=tracer)
        if metrics is not None:
            metrics.observe_outcome(outcome)
        utilities = [
            expected_utility_multi(
                generated.instance.user_by_id(uid).total_contribution(),
                outcome.rewards[uid].critical_contribution,
                alpha,
            )
            for uid in outcome.winners
        ]
        return {"utilities": utilities}

    def aggregate(self, params: dict, values: list[dict]) -> ExperimentResult:
        single_utilities: list[float] = []
        for value in values[: params["single_task_runs"]]:
            single_utilities.extend(value["utilities"])
        multi_utilities = list(values[params["single_task_runs"]]["utilities"])

        xs_s, F_s = empirical_cdf(single_utilities)
        xs_m, F_m = empirical_cdf(multi_utilities)
        rows = [("single", float(x), float(f)) for x, f in zip(xs_s, F_s)]
        rows += [("multi", float(x), float(f)) for x, f in zip(xs_m, F_m)]
        return ExperimentResult(
            experiment_id="fig6",
            description=(
                f"empirical CDF of winners' expected utilities (alpha={params['alpha']})"
            ),
            headers=("setting", "utility", "cdf"),
            rows=tuple(rows),
            extras={
                "min_single": min(single_utilities),
                "min_multi": min(multi_utilities),
                "mean_single": _mean(single_utilities),
                "mean_multi": _mean(multi_utilities),
                "n_single": len(single_utilities),
                "n_multi": len(multi_utilities),
            },
        )


# --------------------------------------------------------------------- #
# Figure 7 — achieved vs required PoS (cell grid)
# --------------------------------------------------------------------- #


class _Fig7Grid(ExperimentGrid):
    """Achieved-PoS comparison: one cell per repetition (all four series)."""

    experiment_id = "fig7"
    testbed_kind = "dense"

    def defaults(self) -> dict:
        return {"requirement": 0.8, "n_users": 60, "n_tasks": 30, "repeats": 3}

    def cells(self, params: dict) -> tuple[Cell, ...]:
        return tuple(
            Cell("fig7", rep, f"rep{rep}", {"rep": rep})
            for rep in range(params["repeats"])
        )

    def run_cell(self, testbed, cell, params, tracer=None, metrics=None) -> dict:
        rep = cell.params["rep"]
        requirement = params["requirement"]
        gen_s = testbed.generator.single_task_instance(
            params["n_users"], requirement=requirement, seed=5000 + rep
        )
        inst = gen_s.instance
        ours = fptas_min_knapsack(inst, 0.5)
        single_ours = achieved_pos(
            inst.contributions[inst.index_of(uid)] for uid in ours.selected
        )
        vcg = st_vcg(inst)
        single_vcg = achieved_pos(
            inst.contributions[inst.index_of(uid)] for uid in vcg.selected
        )

        gen_m = testbed.generator.multi_task_instance(
            params["n_users"], params["n_tasks"], requirement=requirement, seed=5100 + rep
        )
        outcome = MultiTaskMechanism().run(
            gen_m.instance, compute_rewards=False, tracer=tracer
        )
        if metrics is not None:
            metrics.observe_outcome(outcome)
        vcg_m = mt_vcg(gen_m.instance)
        per_task = []
        for task in gen_m.instance.tasks:
            contribs = [
                u.contribution(task.task_id)
                for u in gen_m.instance.users
                if u.user_id in vcg_m.selected and task.task_id in u.task_set
            ]
            per_task.append(achieved_pos(contribs))
        return {
            "single_ours": single_ours,
            "single_vcg": single_vcg,
            "multi_ours": outcome.average_achieved_pos(),
            "multi_vcg": _mean(per_task),
        }

    def aggregate(self, params: dict, values: list[dict]) -> ExperimentResult:
        requirement = params["requirement"]
        rows = (
            ("single/ours", requirement, _mean([v["single_ours"] for v in values])),
            ("single/ST-VCG", requirement, _mean([v["single_vcg"] for v in values])),
            ("multi/ours", requirement, _mean([v["multi_ours"] for v in values])),
            ("multi/MT-VCG", requirement, _mean([v["multi_vcg"] for v in values])),
        )
        return ExperimentResult(
            experiment_id="fig7",
            description="achieved vs required task PoS",
            headers=("setting", "required", "achieved"),
            rows=rows,
            extras={"repeats": params["repeats"]},
        )


# --------------------------------------------------------------------- #
# Figures 8 & 9 — effect of the PoS requirement (cell grids)
# --------------------------------------------------------------------- #


class _RequirementSweepGrid(ExperimentGrid):
    """Shared cell computation for figs 8/9: one cell per (requirement, rep).

    Both figures sweep the same instances (the legacy ``_requirement_sweep``
    helper); they differ only in which measurements :meth:`aggregate` keeps.
    """

    testbed_kind = "dense"

    def defaults(self) -> dict:
        return {
            "requirements": tuple(np.arange(0.5, 0.91, 0.05).round(2)),
            "n_users": 100,
            "n_tasks": 50,
            "repeats": 2,
        }

    def cells(self, params: dict) -> tuple[Cell, ...]:
        cells = []
        for T in params["requirements"]:
            for rep in range(params["repeats"]):
                cells.append(
                    Cell(
                        self.experiment_id,
                        len(cells),
                        f"T{float(T):g}-rep{rep}",
                        {"requirement": float(T), "rep": rep},
                    )
                )
        return tuple(cells)

    def run_cell(self, testbed, cell, params, tracer=None, metrics=None) -> dict:
        T, rep = cell.params["requirement"], cell.params["rep"]
        gen_s = testbed.generator.single_task_instance(
            params["n_users"], requirement=T, seed=6000 + rep
        )
        result = fptas_min_knapsack(gen_s.instance, 0.5)

        gen_m = testbed.generator.multi_task_instance(
            params["n_users"], params["n_tasks"], requirement=T, seed=6100 + rep
        )
        outcome = MultiTaskMechanism().run(
            gen_m.instance, compute_rewards=False, tracer=tracer
        )
        if metrics is not None:
            metrics.observe_outcome(outcome)
        return {
            "selected_single": len(result.selected),
            "cost_single": result.total_cost,
            "selected_multi": len(outcome.winners),
            "cost_multi": outcome.social_cost,
        }

    def _sweep_rows(self, params: dict, values: list[dict]) -> list[tuple]:
        """(T, mean #selected s/m, mean cost s/m) per requirement, in order."""
        rows = []
        for T, group in zip(
            params["requirements"], _chunked(values, params["repeats"])
        ):
            rows.append(
                (
                    float(T),
                    _mean([v["selected_single"] for v in group]),
                    _mean([v["selected_multi"] for v in group]),
                    _mean([v["cost_single"] for v in group]),
                    _mean([v["cost_multi"] for v in group]),
                )
            )
        return rows


class _Fig8Grid(_RequirementSweepGrid):
    experiment_id = "fig8"

    def aggregate(self, params: dict, values: list[dict]) -> ExperimentResult:
        rows = tuple((T, s, m) for T, s, m, _, _ in self._sweep_rows(params, values))
        return ExperimentResult(
            experiment_id="fig8",
            description="#selected users vs PoS requirement",
            headers=("requirement", "selected_single", "selected_multi"),
            rows=rows,
            extras={
                "n_users": params["n_users"],
                "n_tasks": params["n_tasks"],
                "repeats": params["repeats"],
            },
        )


class _Fig9Grid(_RequirementSweepGrid):
    experiment_id = "fig9"

    def aggregate(self, params: dict, values: list[dict]) -> ExperimentResult:
        rows = tuple((T, cs, cm) for T, _, _, cs, cm in self._sweep_rows(params, values))
        return ExperimentResult(
            experiment_id="fig9",
            description="social cost vs PoS requirement",
            headers=("requirement", "cost_single", "cost_multi"),
            rows=rows,
            extras={
                "n_users": params["n_users"],
                "n_tasks": params["n_tasks"],
                "repeats": params["repeats"],
            },
        )


# --------------------------------------------------------------------- #
# Single-task sweep — SeedSequence-seeded cell grid
# --------------------------------------------------------------------- #


class _SweepSingleGrid(ExperimentGrid):
    """Single-task FPTAS sweep whose cells are seeded by ``SeedSequence``.

    Unlike the figure grids (which keep their historical arithmetic seed
    formulas for bit-compatibility), this grid derives every cell's seed
    via :func:`repro.simulation.checkpoint.spawn_cell_seeds` — the
    recommended pattern for new experiments: statistically independent
    streams, reproducible from ``(root_seed, cell index)`` alone.
    """

    experiment_id = "sweep-single"
    testbed_kind = "dense"

    def defaults(self) -> dict:
        return {
            "n_users_list": (20, 40, 60, 80),
            "epsilon": 0.5,
            "repeats": 3,
            "root_seed": 777,
        }

    def cells(self, params: dict) -> tuple[Cell, ...]:
        points = [
            (int(n), rep)
            for n in params["n_users_list"]
            for rep in range(params["repeats"])
        ]
        seeds = spawn_cell_seeds(params["root_seed"], len(points))
        return tuple(
            Cell(
                "sweep-single",
                index,
                f"n{n}-rep{rep}",
                {"n_users": n, "rep": rep, "seed": seed},
            )
            for index, ((n, rep), seed) in enumerate(zip(points, seeds))
        )

    def run_cell(self, testbed, cell, params, tracer=None, metrics=None) -> dict:
        n = cell.params["n_users"]
        generated = testbed.generator.single_task_instance(n, seed=cell.params["seed"])
        instance = generated.instance
        with _span(
            tracer,
            "winner_determination",
            algorithm="fptas",
            n_users=n,
            rep=cell.params["rep"],
        ):
            result = fptas_min_knapsack(instance, params["epsilon"])
        achieved = achieved_pos(
            instance.contributions[instance.index_of(uid)] for uid in result.selected
        )
        return {
            "cost": result.total_cost,
            "selected": len(result.selected),
            "achieved": achieved,
        }

    def aggregate(self, params: dict, values: list[dict]) -> ExperimentResult:
        rows = tuple(
            (
                int(n),
                _mean([v["cost"] for v in group]),
                _mean([v["selected"] for v in group]),
                _mean([v["achieved"] for v in group]),
            )
            for n, group in zip(
                params["n_users_list"], _chunked(values, params["repeats"])
            )
        )
        return ExperimentResult(
            experiment_id="sweep-single",
            description=(
                f"single-task FPTAS sweep vs #users (epsilon={params['epsilon']}, "
                "SeedSequence cells)"
            ),
            headers=("n_users", "fptas_cost", "n_selected", "achieved_pos"),
            rows=rows,
            extras={
                "epsilon": params["epsilon"],
                "repeats": params["repeats"],
                "root_seed": params["root_seed"],
            },
        )


# --------------------------------------------------------------------- #
# Grid-backed drivers (thin wrappers over run_grid)
# --------------------------------------------------------------------- #


def run_fig5a(
    testbed: Testbed | None = None,
    n_users_list: Sequence[int] | None = None,
    epsilon: float | None = None,
    repeats: int | None = None,
    tracer=None,
) -> ExperimentResult:
    """Figure 5(a): single-task social cost vs #users — FPTAS / OPT / Min-Greedy.

    Args:
        testbed: Dense testbed (defaults to the standard one).
        n_users_list: User counts to sweep (default 20..100 step 10).
        epsilon: FPTAS approximation parameter (default 0.5).
        repeats: Instances averaged per point (default 3).
        tracer: Optional tracer recording winner-determination spans.

    Returns:
        Rows of ``(n_users, fptas, opt, min_greedy)`` mean social costs.
    """
    return run_grid(
        GRIDS["fig5a"],
        testbed,
        {"n_users_list": n_users_list, "epsilon": epsilon, "repeats": repeats},
        tracer=tracer,
    )


def run_fig5b(
    testbed: Testbed | None = None,
    n_users_list: Sequence[int] | None = None,
    n_tasks: int | None = None,
    repeats: int | None = None,
    tracer=None,
) -> ExperimentResult:
    """Figure 5(b): multi-task social cost vs #users (Table III setting 1).

    Args:
        testbed: Dense testbed (defaults to the standard one).
        n_users_list: User counts to sweep (default 10..100 step 10).
        n_tasks: Task count per instance (default 15).
        repeats: Instances averaged per point (default 3).
        tracer: Optional tracer threaded into the mechanism.

    Returns:
        Rows of ``(n_users, greedy, opt)`` mean social costs.
    """
    return run_grid(
        GRIDS["fig5b"],
        testbed,
        {"n_users_list": n_users_list, "n_tasks": n_tasks, "repeats": repeats},
        tracer=tracer,
    )


def run_fig5c(
    testbed: Testbed | None = None,
    n_tasks_list: Sequence[int] | None = None,
    n_users: int | None = None,
    repeats: int | None = None,
    tracer=None,
) -> ExperimentResult:
    """Figure 5(c): multi-task social cost vs #tasks (Table III setting 2).

    Args:
        testbed: Dense testbed (defaults to the standard one).
        n_tasks_list: Task counts to sweep (default 10..50 step 5).
        n_users: User count per instance (default 30).
        repeats: Instances averaged per point (default 3).
        tracer: Optional tracer threaded into the mechanism.

    Returns:
        Rows of ``(n_tasks, greedy, opt)`` mean social costs.
    """
    return run_grid(
        GRIDS["fig5c"],
        testbed,
        {"n_tasks_list": n_tasks_list, "n_users": n_users, "repeats": repeats},
        tracer=tracer,
    )


def run_fig6(
    testbed: Testbed | None = None,
    alpha: float | None = None,
    single_task_runs: int | None = None,
    single_task_users: int | None = None,
    multi_task_users: int | None = None,
    multi_task_tasks: int | None = None,
    tracer=None,
) -> ExperimentResult:
    """Figure 6: empirical CDF of winners' expected utilities, both settings.

    Single-task utilities are pooled over several instances (one instance
    selects only a handful of winners); the multi-task instance alone yields
    a large winner set.

    Args:
        testbed: Dense testbed (defaults to the standard one).
        alpha: Value-of-success scaling in the utility model (default 10).
        single_task_runs: Single-task instances pooled (default 6).
        single_task_users: Users per single-task instance (default 40).
        multi_task_users: Users in the multi-task instance (default 60).
        multi_task_tasks: Tasks in the multi-task instance (default 30).
        tracer: Optional tracer threaded into the mechanisms.

    Returns:
        Interleaved CDF rows ``(setting, utility, cdf)``; pooled
        minima/means and sample counts in extras.
    """
    return run_grid(
        GRIDS["fig6"],
        testbed,
        {
            "alpha": alpha,
            "single_task_runs": single_task_runs,
            "single_task_users": single_task_users,
            "multi_task_users": multi_task_users,
            "multi_task_tasks": multi_task_tasks,
        },
        tracer=tracer,
    )


def run_fig7(
    testbed: Testbed | None = None,
    requirement: float | None = None,
    n_users: int | None = None,
    n_tasks: int | None = None,
    repeats: int | None = None,
    tracer=None,
) -> ExperimentResult:
    """Figure 7: achieved task PoS — our mechanisms vs ST-VCG / MT-VCG.

    Achieved PoS is the analytic ``1 − Π(1 − p)`` over each algorithm's
    winner set with the *true* PoS values (multi-task: averaged over tasks).

    Args:
        testbed: Dense testbed (defaults to the standard one).
        requirement: PoS requirement for every task (default 0.8).
        n_users: Users per instance (default 60).
        n_tasks: Tasks per multi-task instance (default 30).
        repeats: Instances averaged (default 3).
        tracer: Optional tracer threaded into the mechanism.

    Returns:
        Four rows ``(setting, required, achieved)`` — single/multi ×
        ours/VCG.
    """
    return run_grid(
        GRIDS["fig7"],
        testbed,
        {
            "requirement": requirement,
            "n_users": n_users,
            "n_tasks": n_tasks,
            "repeats": repeats,
        },
        tracer=tracer,
    )


def run_fig8(
    testbed: Testbed | None = None,
    requirements: Sequence[float] | None = None,
    n_users: int | None = None,
    n_tasks: int | None = None,
    repeats: int | None = None,
    tracer=None,
) -> ExperimentResult:
    """Figure 8: number of selected users vs PoS requirement T ∈ [0.5, 0.9].

    Args:
        testbed: Dense testbed (defaults to the standard one).
        requirements: Requirement sweep (default 0.5..0.9 step 0.05).
        n_users: Users per instance (default 100).
        n_tasks: Tasks per multi-task instance (default 50).
        repeats: Instances averaged per point (default 2).
        tracer: Optional tracer threaded into the mechanism.

    Returns:
        Rows of ``(requirement, selected_single, selected_multi)``.
    """
    return run_grid(
        GRIDS["fig8"],
        testbed,
        {
            "requirements": requirements,
            "n_users": n_users,
            "n_tasks": n_tasks,
            "repeats": repeats,
        },
        tracer=tracer,
    )


def run_fig9(
    testbed: Testbed | None = None,
    requirements: Sequence[float] | None = None,
    n_users: int | None = None,
    n_tasks: int | None = None,
    repeats: int | None = None,
    tracer=None,
) -> ExperimentResult:
    """Figure 9: social cost vs PoS requirement T ∈ [0.5, 0.9].

    Args:
        testbed: Dense testbed (defaults to the standard one).
        requirements: Requirement sweep (default 0.5..0.9 step 0.05).
        n_users: Users per instance (default 100).
        n_tasks: Tasks per multi-task instance (default 50).
        repeats: Instances averaged per point (default 2).
        tracer: Optional tracer threaded into the mechanism.

    Returns:
        Rows of ``(requirement, cost_single, cost_multi)``.
    """
    return run_grid(
        GRIDS["fig9"],
        testbed,
        {
            "requirements": requirements,
            "n_users": n_users,
            "n_tasks": n_tasks,
            "repeats": repeats,
        },
        tracer=tracer,
    )


def run_sweep_single(
    testbed: Testbed | None = None,
    n_users_list: Sequence[int] | None = None,
    epsilon: float | None = None,
    repeats: int | None = None,
    root_seed: int | None = None,
    tracer=None,
) -> ExperimentResult:
    """Single-task FPTAS sweep with SeedSequence-derived cell seeds.

    Args:
        testbed: Dense testbed (defaults to the standard one).
        n_users_list: User counts to sweep (default ``(20, 40, 60, 80)``).
        epsilon: FPTAS approximation parameter (default 0.5).
        repeats: Instances averaged per point (default 3).
        root_seed: Root of the ``SeedSequence`` cell-seed tree (default
            777); every cell seed is a pure function of this and the cell
            index.
        tracer: Optional tracer recording winner-determination spans.

    Returns:
        Rows of ``(n_users, fptas_cost, n_selected, achieved_pos)``.
    """
    return run_grid(
        GRIDS["sweep-single"],
        testbed,
        {
            "n_users_list": n_users_list,
            "epsilon": epsilon,
            "repeats": repeats,
            "root_seed": root_seed,
        },
        tracer=tracer,
    )


# --------------------------------------------------------------------- #
# Ablations
# --------------------------------------------------------------------- #


def run_ablation_epsilon(
    testbed: Testbed | None = None,
    epsilons: Sequence[float] = (2.0, 1.0, 0.5, 0.25, 0.1),
    n_users: int = 60,
    repeats: int = 3,
) -> ExperimentResult:
    """FPTAS ε ablation: solution cost and runtime vs ε (Theorems 2–3).

    Args:
        testbed: Dense testbed (defaults to the standard one).
        epsilons: Approximation parameters to compare.
        n_users: Users per shared instance.
        repeats: Shared instances averaged.

    Returns:
        Rows of ``(epsilon, mean_ratio, max_ratio, mean_seconds)``.
    """
    tb = testbed or default_testbed()
    instances = [
        tb.generator.single_task_instance(n_users, seed=7000 + rep).instance
        for rep in range(repeats)
    ]
    opt_costs = [optimal_single_task(inst).total_cost for inst in instances]
    rows = []
    for eps in epsilons:
        ratios, times = [], []
        for inst, opt_cost in zip(instances, opt_costs):
            start = time.perf_counter()
            result = fptas_min_knapsack(inst, eps)
            times.append(time.perf_counter() - start)
            ratios.append(result.total_cost / opt_cost)
        rows.append((eps, float(np.mean(ratios)), float(np.max(ratios)), float(np.mean(times))))
    return ExperimentResult(
        experiment_id="ablation_epsilon",
        description="FPTAS cost ratio and runtime vs epsilon",
        headers=("epsilon", "mean_ratio", "max_ratio", "mean_seconds"),
        rows=tuple(rows),
        extras={"n_users": n_users, "repeats": repeats},
    )


def run_ablation_delta_q(
    testbed: Testbed | None = None,
    delta_q_values: Sequence[float] = (0.2, 0.1, 0.05, 0.01),
    n_users: int = 30,
    n_tasks: int = 15,
    repeats: int = 3,
) -> ExperimentResult:
    """Δq ablation: theoretical H(γ) bound vs actual greedy/OPT ratio (Thm 5).

    Args:
        testbed: Dense testbed (defaults to the standard one).
        delta_q_values: Contribution-discretisation steps to evaluate.
        n_users: Users per shared instance.
        n_tasks: Tasks per shared instance.
        repeats: Shared instances averaged.

    Returns:
        Rows of ``(delta_q, mean_gamma, mean_H_gamma_bound, actual_ratio)``.
    """
    tb = testbed or default_testbed()
    mechanism = MultiTaskMechanism()
    rows = []
    actual_ratios = []
    instances = []
    for rep in range(repeats):
        generated = tb.generator.multi_task_instance(n_users, n_tasks, seed=7500 + rep)
        instances.append(generated.instance)
        outcome = mechanism.run(generated.instance, compute_rewards=False)
        opt = optimal_multi_task(generated.instance)
        actual_ratios.append(outcome.social_cost / opt.total_cost)
    actual = float(np.mean(actual_ratios))
    for delta_q in delta_q_values:
        gammas = [gamma_parameter(inst, delta_q) for inst in instances]
        bounds = [greedy_approximation_bound(inst, delta_q) for inst in instances]
        rows.append((delta_q, float(np.mean(gammas)), float(np.mean(bounds)), actual))
    return ExperimentResult(
        experiment_id="ablation_delta_q",
        description="H(gamma) bound vs actual greedy approximation ratio",
        headers=("delta_q", "mean_gamma", "mean_H_gamma_bound", "actual_ratio"),
        rows=tuple(rows),
        extras={"n_users": n_users, "n_tasks": n_tasks},
    )


def run_ablation_smoothing(
    testbed: Testbed | None = None,
    m_values: Sequence[int] = (3, 9, 15),
) -> ExperimentResult:
    """Smoothing ablation: the three estimators compared where they differ.

    Top-``m`` *ranking* accuracy is invariant to all three estimators (they
    are monotone transforms of the transition counts), so the interesting
    comparison is probabilistic **calibration**: the mean probability each
    estimator assigns to the held-out true next location, and how often it
    assigns *zero* — the failure mode of the paper's literal
    ``x_ij/(x_i + l)`` formula, which never smooths unseen transitions
    (DESIGN.md, substitution 3).  Zero-probability predictions matter
    downstream: a task PoS of exactly 0 removes the user from that task's
    market entirely.

    Args:
        testbed: Citywide testbed (defaults to the standard one).
        m_values: Prediction-list sizes (only ``max(m_values)`` is scored).

    Returns:
        One row per estimator with ranking accuracy and calibration stats.
    """
    tb = testbed or default_testbed(kind="citywide")
    usable = [p for p in tb.dataset.held_out if p.taxi_id in set(tb.model.taxi_ids)]
    rows = []
    for smoothing in ("laplace", "paper", "mle"):
        model = MarkovMobilityModel.from_sequences(tb.dataset.train, smoothing=smoothing)
        accuracy = prediction_accuracy(model, tb.dataset.held_out, (max(m_values),))
        assigned = [
            model.transition_prob(p.taxi_id, p.current_cell, p.next_cell)
            for p in usable
        ]
        zero_rate = sum(1 for a in assigned if a == 0.0) / len(assigned)
        rows.append(
            (
                smoothing,
                accuracy[max(m_values)],
                float(np.mean(assigned)),
                zero_rate,
            )
        )
    return ExperimentResult(
        experiment_id="ablation_smoothing",
        description="smoothing estimators: ranking accuracy vs calibration",
        headers=(
            "smoothing",
            f"top{max(m_values)}_accuracy",
            "mean_prob_of_truth",
            "zero_prob_rate",
        ),
        rows=tuple(rows),
        extras={"n_held_out": len(usable)},
    )


# --------------------------------------------------------------------- #
# Grid registry
# --------------------------------------------------------------------- #

#: Every experiment as a schedulable cell grid, keyed by CLI name.  Workers
#: resolve grids from this registry by name, so entries must be importable
#: module state (not per-run objects).
GRIDS: dict[str, ExperimentGrid] = {
    grid.experiment_id: grid
    for grid in (
        SingleCellGrid("fig3", run_fig3, "citywide"),
        SingleCellGrid("fig4", run_fig4, "citywide"),
        _Fig5aGrid(),
        _Fig5bGrid(),
        _Fig5cGrid(),
        _Fig6Grid(),
        _Fig7Grid(),
        _Fig8Grid(),
        _Fig9Grid(),
        _SweepSingleGrid(),
        SingleCellGrid("ablation-epsilon", run_ablation_epsilon, "dense"),
        SingleCellGrid("ablation-delta-q", run_ablation_delta_q, "dense"),
        SingleCellGrid("ablation-smoothing", run_ablation_smoothing, "citywide"),
    )
}
