"""Experiment drivers: one function per paper table/figure (paper, §IV).

Every driver returns an :class:`ExperimentResult` — experiment id, column
headers, and the same rows/series the paper's figure plots — which the
benchmark harness prints and EXPERIMENTS.md records.  Drivers share a
:class:`Testbed` (synthetic fleet → learned mobility model → workload
generator) built once per process via :func:`default_testbed`.

Driver ↔ paper map:

=====================  ==========================================
:func:`run_fig3`       location-prediction accuracy vs ``m``
:func:`run_fig4`       PDF of predicted PoS
:func:`run_fig5a`      single-task social cost vs #users
:func:`run_fig5b`      multi-task social cost vs #users (Table III/1)
:func:`run_fig5c`      multi-task social cost vs #tasks (Table III/2)
:func:`run_fig6`       empirical CDF of winners' expected utilities
:func:`run_fig7`       achieved vs required task PoS (incl. *-VCG)
:func:`run_fig8`       #selected users vs PoS requirement
:func:`run_fig9`       social cost vs PoS requirement
=====================  ==========================================

plus three ablations (``run_ablation_epsilon``, ``run_ablation_delta_q``,
``run_ablation_smoothing``) for the design choices DESIGN.md calls out.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..analysis.stats import empirical_cdf, histogram_pdf
from ..analysis.tables import format_table
from ..core.baselines import (
    min_greedy_single_task,
    mt_vcg,
    optimal_multi_task,
    optimal_single_task,
    st_vcg,
)
from ..core.fptas import fptas_min_knapsack
from ..core.multi_task import MultiTaskMechanism
from ..core.obshooks import span as _span
from ..core.rewards import expected_utility_multi, expected_utility_single
from ..core.single_task import SingleTaskMechanism
from ..core.submodular import gamma_parameter, greedy_approximation_bound
from ..core.transforms import achieved_pos, contribution_to_pos
from ..mobility.dataset import TraceDataset
from ..mobility.grid import CityGrid
from ..mobility.markov import MarkovMobilityModel
from ..mobility.prediction import predicted_pos_samples, prediction_accuracy
from ..mobility.synthetic import FleetConfig, SyntheticTaxiFleet
from ..workload.config import SimulationConfig
from ..workload.generator import WorkloadGenerator

__all__ = [
    "ExperimentResult",
    "Testbed",
    "build_testbed",
    "default_testbed",
    "run_fig3",
    "run_fig4",
    "run_fig5a",
    "run_fig5b",
    "run_fig5c",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_ablation_epsilon",
    "run_ablation_delta_q",
    "run_ablation_smoothing",
]


@dataclass(frozen=True)
class ExperimentResult:
    """A reproduced table/figure: id, columns, and data rows."""

    experiment_id: str
    description: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    extras: dict = field(default_factory=dict)

    def to_table(self, precision: int = 3) -> str:
        return format_table(
            self.headers,
            self.rows,
            precision=precision,
            title=f"[{self.experiment_id}] {self.description}",
        )

    def column(self, name: str) -> list:
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def to_csv(self) -> str:
        """The series as CSV text (plot-ready; extras become # comments)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        for row in self.rows:
            writer.writerow(row)
        for key, value in sorted(self.extras.items()):
            buffer.write(f"# {key} = {value}\n")
        return buffer.getvalue()

    def save_csv(self, path) -> None:
        """Write :meth:`to_csv` output to a file."""
        with open(path, "w", newline="") as handle:
            handle.write(self.to_csv())


@dataclass(frozen=True)
class Testbed:
    """The shared evaluation substrate: fleet, trace, model, generator."""

    grid: CityGrid
    fleet: SyntheticTaxiFleet
    dataset: TraceDataset
    model: MarkovMobilityModel
    generator: WorkloadGenerator
    seed: int


def build_testbed(
    n_taxis: int = 250,
    seed: int = 42,
    kind: str = "dense",
    events_per_taxi: int = 240,
    smoothing: str = "laplace",
    config: SimulationConfig | None = None,
) -> Testbed:
    """Build a testbed: synthetic fleet → trace → learned model → generator.

    Two fleet kinds, mirroring how the paper uses its dataset:

    * ``"citywide"`` — taxis spread over the whole city with small local
      supports; calibrated so the *learned model* statistics match Figures
      3 and 4 (top-9 accuracy ≈ 0.9, PoS mass below 0.2).  Used by the
      mobility-model experiments.
    * ``"dense"`` — taxis homed in a small downtown area with large,
      heavily overlapping supports.  This reproduces the auction workload
      shape the paper's Tables II/III imply: task bundles of size 10–20
      drawn from a common pool, with enough candidate users per location
      for the 100-user sweeps.  (The paper's real fleet of 1,692 taxis is
      naturally dense downtown.)  Used by all auction experiments.
    """
    if kind not in ("dense", "citywide"):
        raise ValueError(f"unknown testbed kind {kind!r}")
    grid = CityGrid()
    if kind == "dense":
        fleet_config = FleetConfig(
            n_taxis=n_taxis,
            events_per_taxi=max(events_per_taxi, 400),
            region_radius_cells=2,
            home_radius_cells=2,
            support_size_range=(18, 24),
        )
    else:
        fleet_config = FleetConfig(n_taxis=n_taxis, events_per_taxi=events_per_taxi)
    fleet = SyntheticTaxiFleet(grid, fleet_config, seed=seed)
    dataset = TraceDataset.from_records(fleet.generate_records(), grid)
    model = MarkovMobilityModel.from_sequences(dataset.train, smoothing=smoothing)
    generator = WorkloadGenerator(model, config=config, seed=seed)
    return Testbed(
        grid=grid, fleet=fleet, dataset=dataset, model=model, generator=generator, seed=seed
    )


_TESTBED_CACHE: dict[tuple, Testbed] = {}


def default_testbed(
    n_taxis: int = 250, seed: int = 42, kind: str = "dense"
) -> Testbed:
    """Process-cached standard testbed (building one takes a few seconds)."""
    key = (n_taxis, seed, kind)
    if key not in _TESTBED_CACHE:
        _TESTBED_CACHE[key] = build_testbed(n_taxis=n_taxis, seed=seed, kind=kind)
    return _TESTBED_CACHE[key]


# --------------------------------------------------------------------- #
# Figures 3 & 4 — mobility model evaluation
# --------------------------------------------------------------------- #


def run_fig3(
    testbed: Testbed | None = None, m_values: Sequence[int] = tuple(range(3, 16))
) -> ExperimentResult:
    """Figure 3: top-``m`` next-location prediction accuracy, m = 3..15."""
    tb = testbed or default_testbed(kind="citywide")
    accuracy = prediction_accuracy(tb.model, tb.dataset.held_out, m_values)
    rows = tuple((m, accuracy[m]) for m in m_values)
    return ExperimentResult(
        experiment_id="fig3",
        description="location prediction accuracy vs #predicted locations",
        headers=("m", "accuracy"),
        rows=rows,
        extras={"accuracy_at_9": accuracy.get(9)},
    )


def run_fig4(testbed: Testbed | None = None, bins: int = 20) -> ExperimentResult:
    """Figure 4: empirical PDF of predicted PoS values."""
    tb = testbed or default_testbed(kind="citywide")
    samples = predicted_pos_samples(tb.model)
    centers, density = histogram_pdf(samples, bins=bins, value_range=(0.0, 1.0))
    rows = tuple((float(c), float(d)) for c, d in zip(centers, density))
    arr = np.asarray(samples)
    return ExperimentResult(
        experiment_id="fig4",
        description="PDF of predicted PoS",
        headers=("pos_bin_center", "density"),
        rows=rows,
        extras={
            "n_samples": len(samples),
            "fraction_below_0.2": float((arr <= 0.2).mean()),
            "mean_pos": float(arr.mean()),
        },
    )


# --------------------------------------------------------------------- #
# Figure 5 — social cost
# --------------------------------------------------------------------- #


def run_fig5a(
    testbed: Testbed | None = None,
    n_users_list: Sequence[int] = tuple(range(20, 101, 10)),
    epsilon: float = 0.5,
    repeats: int = 3,
    tracer=None,
) -> ExperimentResult:
    """Figure 5(a): single-task social cost vs #users — FPTAS / OPT / Min-Greedy."""
    tb = testbed or default_testbed()
    rows = []
    for n in n_users_list:
        fptas_costs, opt_costs, greedy_costs = [], [], []
        for rep in range(repeats):
            generated = tb.generator.single_task_instance(n, seed=1000 * rep + n)
            instance = generated.instance
            with _span(
                tracer, "winner_determination", algorithm="fptas", n_users=n, rep=rep
            ):
                fptas_costs.append(fptas_min_knapsack(instance, epsilon).total_cost)
            opt_costs.append(optimal_single_task(instance).total_cost)
            greedy_costs.append(min_greedy_single_task(instance).total_cost)
        rows.append(
            (
                n,
                float(np.mean(fptas_costs)),
                float(np.mean(opt_costs)),
                float(np.mean(greedy_costs)),
            )
        )
    return ExperimentResult(
        experiment_id="fig5a",
        description=f"single-task social cost vs #users (epsilon={epsilon})",
        headers=("n_users", "fptas", "opt", "min_greedy"),
        rows=tuple(rows),
        extras={"epsilon": epsilon, "repeats": repeats},
    )


def run_fig5b(
    testbed: Testbed | None = None,
    n_users_list: Sequence[int] = tuple(range(10, 101, 10)),
    n_tasks: int = 15,
    repeats: int = 3,
    tracer=None,
) -> ExperimentResult:
    """Figure 5(b): multi-task social cost vs #users (Table III setting 1)."""
    tb = testbed or default_testbed()
    mechanism = MultiTaskMechanism()
    rows = []
    for n in n_users_list:
        greedy_costs, opt_costs = [], []
        for rep in range(repeats):
            generated = tb.generator.multi_task_instance(n, n_tasks, seed=2000 * rep + n)
            outcome = mechanism.run(
                generated.instance, compute_rewards=False, tracer=tracer
            )
            greedy_costs.append(outcome.social_cost)
            opt_costs.append(optimal_multi_task(generated.instance).total_cost)
        rows.append((n, float(np.mean(greedy_costs)), float(np.mean(opt_costs))))
    return ExperimentResult(
        experiment_id="fig5b",
        description=f"multi-task social cost vs #users ({n_tasks} tasks)",
        headers=("n_users", "greedy", "opt"),
        rows=tuple(rows),
        extras={"n_tasks": n_tasks, "repeats": repeats},
    )


def run_fig5c(
    testbed: Testbed | None = None,
    n_tasks_list: Sequence[int] = tuple(range(10, 51, 5)),
    n_users: int = 30,
    repeats: int = 3,
    tracer=None,
) -> ExperimentResult:
    """Figure 5(c): multi-task social cost vs #tasks (Table III setting 2)."""
    tb = testbed or default_testbed()
    mechanism = MultiTaskMechanism()
    rows = []
    for t in n_tasks_list:
        greedy_costs, opt_costs = [], []
        for rep in range(repeats):
            generated = tb.generator.multi_task_instance(n_users, t, seed=3000 * rep + t)
            outcome = mechanism.run(
                generated.instance, compute_rewards=False, tracer=tracer
            )
            greedy_costs.append(outcome.social_cost)
            opt_costs.append(optimal_multi_task(generated.instance).total_cost)
        rows.append((t, float(np.mean(greedy_costs)), float(np.mean(opt_costs))))
    return ExperimentResult(
        experiment_id="fig5c",
        description=f"multi-task social cost vs #tasks ({n_users} users)",
        headers=("n_tasks", "greedy", "opt"),
        rows=tuple(rows),
        extras={"n_users": n_users, "repeats": repeats},
    )


# --------------------------------------------------------------------- #
# Figure 6 — winners' expected utilities
# --------------------------------------------------------------------- #


def run_fig6(
    testbed: Testbed | None = None,
    alpha: float = 10.0,
    single_task_runs: int = 6,
    single_task_users: int = 40,
    multi_task_users: int = 60,
    multi_task_tasks: int = 30,
    tracer=None,
) -> ExperimentResult:
    """Figure 6: empirical CDF of winners' expected utilities, both settings.

    Single-task utilities are pooled over several instances (one instance
    selects only a handful of winners); the multi-task instance alone yields
    a large winner set.
    """
    tb = testbed or default_testbed()
    single_mech = SingleTaskMechanism(alpha=alpha, tolerance=1e-6)
    single_utilities: list[float] = []
    for rep in range(single_task_runs):
        generated = tb.generator.single_task_instance(single_task_users, seed=4000 + rep)
        outcome = single_mech.run(generated.instance, tracer=tracer)
        for uid in outcome.winners:
            true_pos = contribution_to_pos(
                generated.instance.contributions[generated.instance.index_of(uid)]
            )
            single_utilities.append(
                expected_utility_single(
                    true_pos, outcome.rewards[uid].critical_pos, alpha
                )
            )

    multi_mech = MultiTaskMechanism(alpha=alpha)
    generated = tb.generator.multi_task_instance(
        multi_task_users, multi_task_tasks, seed=4500
    )
    outcome = multi_mech.run(generated.instance, tracer=tracer)
    multi_utilities = [
        expected_utility_multi(
            generated.instance.user_by_id(uid).total_contribution(),
            outcome.rewards[uid].critical_contribution,
            alpha,
        )
        for uid in outcome.winners
    ]

    xs_s, F_s = empirical_cdf(single_utilities)
    xs_m, F_m = empirical_cdf(multi_utilities)
    # Interleave both CDFs into rows tagged by setting.
    rows = [("single", float(x), float(f)) for x, f in zip(xs_s, F_s)]
    rows += [("multi", float(x), float(f)) for x, f in zip(xs_m, F_m)]
    return ExperimentResult(
        experiment_id="fig6",
        description=f"empirical CDF of winners' expected utilities (alpha={alpha})",
        headers=("setting", "utility", "cdf"),
        rows=tuple(rows),
        extras={
            "min_single": min(single_utilities),
            "min_multi": min(multi_utilities),
            "mean_single": float(np.mean(single_utilities)),
            "mean_multi": float(np.mean(multi_utilities)),
            "n_single": len(single_utilities),
            "n_multi": len(multi_utilities),
        },
    )


# --------------------------------------------------------------------- #
# Figure 7 — achieved vs required PoS
# --------------------------------------------------------------------- #


def run_fig7(
    testbed: Testbed | None = None,
    requirement: float = 0.8,
    n_users: int = 60,
    n_tasks: int = 30,
    repeats: int = 3,
    tracer=None,
) -> ExperimentResult:
    """Figure 7: achieved task PoS — our mechanisms vs ST-VCG / MT-VCG.

    Achieved PoS is the analytic ``1 − Π(1 − p)`` over each algorithm's
    winner set with the *true* PoS values (multi-task: averaged over tasks).
    """
    tb = testbed or default_testbed()
    single_ours, single_vcg = [], []
    multi_ours, multi_vcg = [], []
    mechanism = MultiTaskMechanism()
    for rep in range(repeats):
        gen_s = tb.generator.single_task_instance(
            n_users, requirement=requirement, seed=5000 + rep
        )
        inst = gen_s.instance
        ours = fptas_min_knapsack(inst, 0.5)
        single_ours.append(
            achieved_pos(
                inst.contributions[inst.index_of(uid)] for uid in ours.selected
            )
        )
        vcg = st_vcg(inst)
        single_vcg.append(
            achieved_pos(
                inst.contributions[inst.index_of(uid)] for uid in vcg.selected
            )
        )

        gen_m = tb.generator.multi_task_instance(
            n_users, n_tasks, requirement=requirement, seed=5100 + rep
        )
        outcome = mechanism.run(gen_m.instance, compute_rewards=False, tracer=tracer)
        multi_ours.append(outcome.average_achieved_pos())
        vcg_m = mt_vcg(gen_m.instance)
        per_task = []
        for task in gen_m.instance.tasks:
            contribs = [
                u.contribution(task.task_id)
                for u in gen_m.instance.users
                if u.user_id in vcg_m.selected and task.task_id in u.task_set
            ]
            per_task.append(achieved_pos(contribs))
        multi_vcg.append(float(np.mean(per_task)))

    rows = (
        ("single/ours", requirement, float(np.mean(single_ours))),
        ("single/ST-VCG", requirement, float(np.mean(single_vcg))),
        ("multi/ours", requirement, float(np.mean(multi_ours))),
        ("multi/MT-VCG", requirement, float(np.mean(multi_vcg))),
    )
    return ExperimentResult(
        experiment_id="fig7",
        description="achieved vs required task PoS",
        headers=("setting", "required", "achieved"),
        rows=rows,
        extras={"repeats": repeats},
    )


# --------------------------------------------------------------------- #
# Figures 8 & 9 — effect of the PoS requirement
# --------------------------------------------------------------------- #


def _requirement_sweep(
    tb: Testbed,
    requirements: Sequence[float],
    n_users: int,
    n_tasks: int,
    repeats: int,
    tracer=None,
) -> list[tuple[float, float, float, float, float]]:
    """(T, #selected single, #selected multi, cost single, cost multi) rows."""
    mechanism = MultiTaskMechanism()
    rows = []
    for T in requirements:
        sel_s, sel_m, cost_s, cost_m = [], [], [], []
        for rep in range(repeats):
            gen_s = tb.generator.single_task_instance(
                n_users, requirement=T, seed=6000 + rep
            )
            result = fptas_min_knapsack(gen_s.instance, 0.5)
            sel_s.append(len(result.selected))
            cost_s.append(result.total_cost)

            gen_m = tb.generator.multi_task_instance(
                n_users, n_tasks, requirement=T, seed=6100 + rep
            )
            outcome = mechanism.run(gen_m.instance, compute_rewards=False, tracer=tracer)
            sel_m.append(len(outcome.winners))
            cost_m.append(outcome.social_cost)
        rows.append(
            (
                float(T),
                float(np.mean(sel_s)),
                float(np.mean(sel_m)),
                float(np.mean(cost_s)),
                float(np.mean(cost_m)),
            )
        )
    return rows


def run_fig8(
    testbed: Testbed | None = None,
    requirements: Sequence[float] = tuple(np.arange(0.5, 0.91, 0.05).round(2)),
    n_users: int = 100,
    n_tasks: int = 50,
    repeats: int = 2,
    tracer=None,
) -> ExperimentResult:
    """Figure 8: number of selected users vs PoS requirement T ∈ [0.5, 0.9]."""
    tb = testbed or default_testbed()
    sweep = _requirement_sweep(tb, requirements, n_users, n_tasks, repeats, tracer=tracer)
    rows = tuple((T, s, m) for T, s, m, _, _ in sweep)
    return ExperimentResult(
        experiment_id="fig8",
        description="#selected users vs PoS requirement",
        headers=("requirement", "selected_single", "selected_multi"),
        rows=rows,
        extras={"n_users": n_users, "n_tasks": n_tasks, "repeats": repeats},
    )


def run_fig9(
    testbed: Testbed | None = None,
    requirements: Sequence[float] = tuple(np.arange(0.5, 0.91, 0.05).round(2)),
    n_users: int = 100,
    n_tasks: int = 50,
    repeats: int = 2,
    tracer=None,
) -> ExperimentResult:
    """Figure 9: social cost vs PoS requirement T ∈ [0.5, 0.9]."""
    tb = testbed or default_testbed()
    sweep = _requirement_sweep(tb, requirements, n_users, n_tasks, repeats, tracer=tracer)
    rows = tuple((T, cs, cm) for T, _, _, cs, cm in sweep)
    return ExperimentResult(
        experiment_id="fig9",
        description="social cost vs PoS requirement",
        headers=("requirement", "cost_single", "cost_multi"),
        rows=rows,
        extras={"n_users": n_users, "n_tasks": n_tasks, "repeats": repeats},
    )


# --------------------------------------------------------------------- #
# Ablations
# --------------------------------------------------------------------- #


def run_ablation_epsilon(
    testbed: Testbed | None = None,
    epsilons: Sequence[float] = (2.0, 1.0, 0.5, 0.25, 0.1),
    n_users: int = 60,
    repeats: int = 3,
) -> ExperimentResult:
    """FPTAS ε ablation: solution cost and runtime vs ε (Theorems 2–3)."""
    tb = testbed or default_testbed()
    instances = [
        tb.generator.single_task_instance(n_users, seed=7000 + rep).instance
        for rep in range(repeats)
    ]
    opt_costs = [optimal_single_task(inst).total_cost for inst in instances]
    rows = []
    for eps in epsilons:
        ratios, times = [], []
        for inst, opt_cost in zip(instances, opt_costs):
            start = time.perf_counter()
            result = fptas_min_knapsack(inst, eps)
            times.append(time.perf_counter() - start)
            ratios.append(result.total_cost / opt_cost)
        rows.append((eps, float(np.mean(ratios)), float(np.max(ratios)), float(np.mean(times))))
    return ExperimentResult(
        experiment_id="ablation_epsilon",
        description="FPTAS cost ratio and runtime vs epsilon",
        headers=("epsilon", "mean_ratio", "max_ratio", "mean_seconds"),
        rows=tuple(rows),
        extras={"n_users": n_users, "repeats": repeats},
    )


def run_ablation_delta_q(
    testbed: Testbed | None = None,
    delta_q_values: Sequence[float] = (0.2, 0.1, 0.05, 0.01),
    n_users: int = 30,
    n_tasks: int = 15,
    repeats: int = 3,
) -> ExperimentResult:
    """Δq ablation: theoretical H(γ) bound vs actual greedy/OPT ratio (Thm 5)."""
    tb = testbed or default_testbed()
    mechanism = MultiTaskMechanism()
    rows = []
    actual_ratios = []
    instances = []
    for rep in range(repeats):
        generated = tb.generator.multi_task_instance(n_users, n_tasks, seed=7500 + rep)
        instances.append(generated.instance)
        outcome = mechanism.run(generated.instance, compute_rewards=False)
        opt = optimal_multi_task(generated.instance)
        actual_ratios.append(outcome.social_cost / opt.total_cost)
    actual = float(np.mean(actual_ratios))
    for delta_q in delta_q_values:
        gammas = [gamma_parameter(inst, delta_q) for inst in instances]
        bounds = [greedy_approximation_bound(inst, delta_q) for inst in instances]
        rows.append((delta_q, float(np.mean(gammas)), float(np.mean(bounds)), actual))
    return ExperimentResult(
        experiment_id="ablation_delta_q",
        description="H(gamma) bound vs actual greedy approximation ratio",
        headers=("delta_q", "mean_gamma", "mean_H_gamma_bound", "actual_ratio"),
        rows=tuple(rows),
        extras={"n_users": n_users, "n_tasks": n_tasks},
    )


def run_ablation_smoothing(
    testbed: Testbed | None = None,
    m_values: Sequence[int] = (3, 9, 15),
) -> ExperimentResult:
    """Smoothing ablation: the three estimators compared where they differ.

    Top-``m`` *ranking* accuracy is invariant to all three estimators (they
    are monotone transforms of the transition counts), so the interesting
    comparison is probabilistic **calibration**: the mean probability each
    estimator assigns to the held-out true next location, and how often it
    assigns *zero* — the failure mode of the paper's literal
    ``x_ij/(x_i + l)`` formula, which never smooths unseen transitions
    (DESIGN.md, substitution 3).  Zero-probability predictions matter
    downstream: a task PoS of exactly 0 removes the user from that task's
    market entirely.
    """
    tb = testbed or default_testbed(kind="citywide")
    usable = [p for p in tb.dataset.held_out if p.taxi_id in set(tb.model.taxi_ids)]
    rows = []
    for smoothing in ("laplace", "paper", "mle"):
        model = MarkovMobilityModel.from_sequences(tb.dataset.train, smoothing=smoothing)
        accuracy = prediction_accuracy(model, tb.dataset.held_out, (max(m_values),))
        assigned = [
            model.transition_prob(p.taxi_id, p.current_cell, p.next_cell)
            for p in usable
        ]
        zero_rate = sum(1 for a in assigned if a == 0.0) / len(assigned)
        rows.append(
            (
                smoothing,
                accuracy[max(m_values)],
                float(np.mean(assigned)),
                zero_rate,
            )
        )
    return ExperimentResult(
        experiment_id="ablation_smoothing",
        description="smoothing estimators: ranking accuracy vs calibration",
        headers=(
            "smoothing",
            f"top{max(m_values)}_accuracy",
            "mean_prob_of_truth",
            "zero_prob_rate",
        ),
        rows=tuple(rows),
        extras={"n_held_out": len(usable)},
    )
