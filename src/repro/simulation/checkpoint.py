"""Checkpoint/resume protocol for the cell-grid experiment runner.

The parallel runner (:mod:`repro.simulation.parallel`) decomposes every
experiment into independent *cells* (one parameter point × repetition).  As
each cell finishes, one JSON line is appended to ``checkpoint.jsonl`` inside
the run directory; a resumed run loads that file, skips every recorded
cell, and recomputes only the missing ones.  Records are therefore the unit
of durability: a run killed mid-flight loses at most the cells that had not
yet been flushed.

Three layers, all stdlib + numpy:

* :class:`CellRecord` / :func:`encode_record` / :func:`decode_record` —
  the schema and its JSON round-trip;
* :class:`CheckpointLog` / :func:`load_checkpoint` — append-only JSONL
  persistence keyed by ``(experiment, cell_id)``;
* :func:`spawn_cell_seeds` / :func:`normalize_values` — deterministic
  per-cell seeding (``np.random.SeedSequence.spawn``) and the value
  normalisation that makes resumed results bit-identical to fresh ones.

Normalisation matters because resumed cell values pass through JSON while
fresh ones do not: both paths round-trip through :func:`normalize_values`,
so a merged result never depends on *which* cells came from the checkpoint.

>>> rec = CellRecord(experiment="fig5a", cell_id="n20-rep0", index=0,
...                  params={"epsilon": 0.5}, values={"fptas": 3.25})
>>> decode_record(encode_record(rec)) == rec
True
>>> normalize_values({"cost": np.float64(1.5), "ids": (1, 2)})
{'cost': 1.5, 'ids': [1, 2]}
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

__all__ = [
    "CHECKPOINT_NAME",
    "CellRecord",
    "CheckpointLog",
    "decode_record",
    "encode_record",
    "load_checkpoint",
    "normalize_values",
    "spawn_cell_seeds",
]

#: File name of the checkpoint stream within a run directory.
CHECKPOINT_NAME = "checkpoint.jsonl"


def _json_default(value):
    """Coerce the non-JSON types cell values may contain."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, Path):
        return str(value)
    if hasattr(value, "tolist"):  # numpy scalars and arrays alike
        return value.tolist()
    raise TypeError(f"cannot serialise {type(value).__name__} in a checkpoint record")


def normalize_values(values: dict) -> dict:
    """Round-trip a cell's value dict through JSON.

    Applied to **every** cell result — fresh or loaded from a checkpoint —
    before aggregation, so tuples become lists, numpy scalars become Python
    numbers, and dict keys become strings in both paths alike.  Without
    this, a resumed run could aggregate a mix of raw and JSON-decoded
    values and drift from the uninterrupted run.

    Args:
        values: JSON-serialisable mapping produced by a cell.

    Returns:
        The mapping as ``json.loads(json.dumps(values))`` would decode it.

    Raises:
        TypeError: If a value is not JSON-serialisable even after numpy /
            set / path coercion.

    >>> normalize_values({"xs": (1.0, 2.0), "n": np.int64(3)})
    {'xs': [1.0, 2.0], 'n': 3}
    """
    return json.loads(json.dumps(values, default=_json_default))


def spawn_cell_seeds(root_seed: int, n: int) -> tuple[int, ...]:
    """Derive ``n`` statistically independent cell seeds from one root seed.

    Uses ``np.random.SeedSequence(root_seed).spawn(n)`` — the children are
    independent high-entropy streams, yet the whole tuple is a pure
    function of ``(root_seed, n)``, so any worker (or a resumed run) can
    regenerate cell ``i``'s seed without coordination.

    Args:
        root_seed: The experiment-level seed.
        n: Number of cells to seed.

    Returns:
        ``n`` seeds, one per cell, in cell-index order.

    >>> a = spawn_cell_seeds(42, 4)
    >>> a == spawn_cell_seeds(42, 4)          # deterministic
    True
    >>> len(set(a)) == 4                      # distinct per cell
    True
    >>> a[:2] == spawn_cell_seeds(42, 2)      # prefix-stable
    True
    """
    children = np.random.SeedSequence(root_seed).spawn(n)
    return tuple(int(child.generate_state(1, dtype=np.uint64)[0]) for child in children)


@dataclass(frozen=True)
class CellRecord:
    """One completed cell, as persisted in ``checkpoint.jsonl``.

    Attributes:
        experiment: Experiment id the cell belongs to (e.g. ``"fig5a"``).
        cell_id: Stable human-readable id within the experiment
            (e.g. ``"n20-rep1"``); unique per experiment.
        index: The cell's position in the grid's canonical order —
            aggregation replays cells in this order so float accumulation
            matches the serial run exactly.
        params: The resolved experiment parameters the cell ran under
            (used to reject resuming into a differently-configured run).
        values: The cell's outputs (:func:`normalize_values`-normalised).
        seconds: Wall-clock the cell took, for scheduling diagnostics.
        pid: OS process id that executed the cell (worker provenance).
        metrics: Optional ``MetricsRegistry.to_dict()`` snapshot of the
            cell's metrics, merged into the parent registry on resume.
    """

    experiment: str
    cell_id: str
    index: int
    params: dict = field(default_factory=dict)
    values: dict = field(default_factory=dict)
    seconds: float | None = None
    pid: int | None = None
    metrics: dict | None = None

    @property
    def key(self) -> tuple[str, str]:
        """The ``(experiment, cell_id)`` identity used for resume lookups."""
        return (self.experiment, self.cell_id)


def encode_record(record: CellRecord) -> str:
    """Serialise a :class:`CellRecord` as one JSON line (no trailing newline).

    >>> encode_record(CellRecord("fig5a", "n20-rep0", 0)).startswith('{"')
    True
    """
    return json.dumps(asdict(record), default=_json_default, sort_keys=True)


def decode_record(line: str) -> CellRecord:
    """Parse one checkpoint line back into a :class:`CellRecord`.

    Raises:
        ValueError: If the line is not a JSON object with the record fields.
    """
    payload = json.loads(line)
    if not isinstance(payload, dict):
        raise ValueError(f"checkpoint line is not an object: {line!r}")
    known = set(CellRecord.__dataclass_fields__)
    return CellRecord(**{k: v for k, v in payload.items() if k in known})


class CheckpointLog:
    """Append-only JSONL writer for completed cells.

    Opens the file in append mode — a resumed run keeps extending the same
    checkpoint, so the file accumulates the union of all attempts.  Each
    record is flushed immediately: durability is per-cell, which is the
    whole point of checkpointing.

    Usable as a context manager::

        with CheckpointLog(run_dir / CHECKPOINT_NAME) as ckpt:
            ckpt.append(record)
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self.n_written = 0

    def append(self, record: CellRecord) -> None:
        """Write one record and flush it to disk."""
        self._handle.write(encode_record(record) + "\n")
        self._handle.flush()
        self.n_written += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "CheckpointLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def load_checkpoint(path: str | Path) -> dict[tuple[str, str], CellRecord]:
    """Load every completed cell from a checkpoint file.

    Args:
        path: The ``checkpoint.jsonl`` file (missing file → empty dict).

    Returns:
        Mapping ``(experiment, cell_id) -> CellRecord``.  When the same
        cell appears more than once (an interrupted run resumed twice),
        the **last** record wins.  A trailing partially-written line —
        the signature of a kill mid-flush — is ignored; any other corrupt
        line raises.

    Raises:
        ValueError: On a corrupt non-trailing line, with its 1-based
            line number.
    """
    path = Path(path)
    if not path.exists():
        return {}
    completed: dict[tuple[str, str], CellRecord] = {}
    lines = path.read_text(encoding="utf-8").splitlines()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = decode_record(line)
        except (ValueError, TypeError) as error:
            if lineno == len(lines):
                break  # torn final write from an interrupted run
            raise ValueError(
                f"{path}:{lineno}: corrupt checkpoint record: {error}"
            ) from error
        completed[record.key] = record
    return completed
