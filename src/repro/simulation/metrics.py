"""Evaluation metrics over auction outcomes and executions (paper, §IV).

The figures' raw series come from the experiment drivers; this module holds
the reusable metric computations behind them, so downstream users can score
their own campaigns the same way the benchmarks do:

* :func:`social_cost` — the platform's optimisation objective;
* :func:`achieved_task_pos` — per-task analytic completion probability of a
  winner set under a (true) type profile (Figure 7's y-axis);
* :func:`expected_utilities_single` / :func:`expected_utilities_multi` —
  winners' expected utilities (Figure 6's sample);
* :func:`expected_platform_spend` — what the EC contracts cost the platform
  in expectation, and :func:`platform_spend_summary` over realised runs;
* :func:`completion_rate` — fraction of tasks completed in an execution.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from ..core.multi_task import MultiTaskOutcome
from ..core.rewards import expected_utility_multi, expected_utility_single
from ..core.single_task import SingleTaskOutcome
from ..core.transforms import achieved_pos, contribution_to_pos
from ..core.types import AuctionInstance, SingleTaskInstance
from .engine import ExecutionResult

__all__ = [
    "social_cost",
    "achieved_task_pos",
    "expected_utilities_single",
    "expected_utilities_multi",
    "expected_platform_spend",
    "SpendSummary",
    "platform_spend_summary",
    "completion_rate",
]


def social_cost(instance: AuctionInstance, winners: Iterable[int]) -> float:
    """Total (true) cost of a winner set — the platform's objective."""
    return sum(instance.user_by_id(uid).cost for uid in winners)


def achieved_task_pos(
    instance: AuctionInstance, winners: frozenset[int]
) -> dict[int, float]:
    """Per-task ``1 − Π(1 − p_i^j)`` over the winner set (true profile)."""
    result: dict[int, float] = {}
    for task in instance.tasks:
        contributions = [
            u.contribution(task.task_id)
            for u in instance.users
            if u.user_id in winners and task.task_id in u.task_set
        ]
        result[task.task_id] = achieved_pos(contributions)
    return result


def expected_utilities_single(
    instance: SingleTaskInstance, outcome: SingleTaskOutcome, alpha: float
) -> dict[int, float]:
    """Winners' expected utilities ``(p − p̄)·α`` under their true PoS."""
    utilities: dict[int, float] = {}
    for uid, contract in outcome.rewards.items():
        true_pos = contribution_to_pos(
            instance.contributions[instance.index_of(uid)]
        )
        utilities[uid] = expected_utility_single(true_pos, contract.critical_pos, alpha)
    return utilities


def expected_utilities_multi(
    instance: AuctionInstance, outcome: MultiTaskOutcome, alpha: float
) -> dict[int, float]:
    """Winners' expected utilities per Equation (6), under their true types."""
    utilities: dict[int, float] = {}
    for uid, contract in outcome.rewards.items():
        utilities[uid] = expected_utility_multi(
            instance.user_by_id(uid).total_contribution(),
            contract.critical_contribution,
            alpha,
        )
    return utilities


def expected_platform_spend(
    outcome: SingleTaskOutcome | MultiTaskOutcome,
    success_probabilities: dict[int, float],
) -> float:
    """Expected total reward paid, given each winner's success probability.

    For a winner with success probability ``p`` the EC contract pays
    ``p·r¹ + (1−p)·r²``.  ``success_probabilities`` maps each winner to her
    probability of *contract success* (single task: completing the task;
    multi-task: completing any bundle task).
    """
    total = 0.0
    for uid, contract in outcome.rewards.items():
        p = success_probabilities[uid]
        total += p * contract.success_reward + (1.0 - p) * contract.failure_reward
    return total


@dataclass(frozen=True, slots=True)
class SpendSummary:
    """Realised platform spend over repeated executions."""

    n_runs: int
    mean: float
    std: float
    minimum: float
    maximum: float


def platform_spend_summary(results: Sequence[ExecutionResult]) -> SpendSummary:
    """Summarise realised spend over executions of the same outcome."""
    if not results:
        raise ValueError("need at least one execution result")
    spends = np.array([r.platform_spend for r in results])
    return SpendSummary(
        n_runs=len(spends),
        mean=float(spends.mean()),
        std=float(spends.std(ddof=0)),
        minimum=float(spends.min()),
        maximum=float(spends.max()),
    )


def completion_rate(result: ExecutionResult) -> float:
    """Fraction of tasks completed in one realised execution."""
    if not result.task_completed:
        raise ValueError("execution result covers no tasks")
    done = sum(1 for completed in result.task_completed.values() if completed)
    return done / len(result.task_completed)
