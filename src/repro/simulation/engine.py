"""Execution simulation: Bernoulli task attempts and reward settlement.

After the auction clears, winners attempt their tasks; each attempt succeeds
independently with the user's *true* PoS.  The platform then settles the
execution-contingent contracts on the realised outcomes.  This module
implements that post-auction phase:

* :class:`ExecutionSimulator` — seeded Monte-Carlo execution of a cleared
  single- or multi-task auction, producing an :class:`ExecutionResult`
  (who succeeded, what was paid, realised utilities, task completion);
* :func:`empirical_task_pos` — repeated-trial estimates of per-task
  completion probability, used to cross-check the analytic
  ``1 − Π(1 − p)`` values reported in Figure 7.

The simulator takes *true* types via the instance objects; when studying
strategic behaviour, clear the auction on the declared instance but simulate
execution with the true one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.errors import ValidationError
from ..core.multi_task import MultiTaskOutcome
from ..core.single_task import SingleTaskOutcome
from ..core.transforms import contribution_to_pos
from ..core.types import AuctionInstance, SingleTaskInstance

__all__ = ["ExecutionResult", "ExecutionSimulator", "empirical_task_pos"]


@dataclass(frozen=True)
class ExecutionResult:
    """One realised execution of a cleared auction.

    Attributes:
        user_success: Per-winner overall success (single task: completed the
            task; multi-task: completed at least one bundle task).
        task_completed: Per-task completion (at least one winner succeeded).
        rewards_paid: Realised reward per winner (EC contract settled).
        utilities: Realised utility ``r − c`` per winner.
        platform_spend: Total rewards paid.
        attempts: Per-(winner, task) attempt outcomes for multi-task
            executions — the raw observations adaptive PoS learning
            consumes (:mod:`repro.simulation.adaptive`).  Empty for
            single-task executions (``user_success`` already carries it).
    """

    user_success: dict[int, bool]
    task_completed: dict[int, bool]
    rewards_paid: dict[int, float]
    utilities: dict[int, float]
    platform_spend: float = field(default=0.0)
    attempts: dict[tuple[int, int], bool] = field(default_factory=dict)

    @property
    def all_tasks_completed(self) -> bool:
        return all(self.task_completed.values())


class ExecutionSimulator:
    """Seeded Bernoulli execution of cleared auctions.

    Args:
        seed: RNG seed for the Bernoulli attempt draws.
        metrics: Optional duck-typed
            :class:`repro.obs.metrics.MetricsRegistry`; when set, every
            simulated execution is folded in via ``observe_execution``
            (settlement totals, completion rates, realised utilities).
    """

    def __init__(self, seed: int = 0, metrics=None):
        self._rng = np.random.default_rng(seed)
        self.metrics = metrics

    def _observe(self, result: ExecutionResult) -> ExecutionResult:
        if self.metrics is not None:
            self.metrics.observe_execution(result)
        return result

    def simulate_single(
        self, instance: SingleTaskInstance, outcome: SingleTaskOutcome, task_id: int = 0
    ) -> ExecutionResult:
        """Execute a cleared single-task auction once.

        Each winner succeeds with her true PoS (derived from the instance's
        contribution); the task completes if any winner succeeds.

        Args:
            instance: The (true-type) instance the auction was cleared on.
            outcome: The cleared auction — winners and their EC contracts.
            task_id: Id to report the task's completion under.

        Returns:
            The realised :class:`ExecutionResult`; also folded into the
            simulator's metrics registry when one was given.
        """
        user_success: dict[int, bool] = {}
        rewards_paid: dict[int, float] = {}
        utilities: dict[int, float] = {}
        for uid in sorted(outcome.winners):
            pos = contribution_to_pos(instance.contributions[instance.index_of(uid)])
            success = bool(self._rng.random() < pos)
            user_success[uid] = success
            if uid in outcome.rewards:
                contract = outcome.rewards[uid]
                rewards_paid[uid] = contract.realized(success)
                utilities[uid] = contract.realized_utility(success)
        return self._observe(
            ExecutionResult(
                user_success=user_success,
                task_completed={task_id: any(user_success.values())},
                rewards_paid=rewards_paid,
                utilities=utilities,
                platform_spend=sum(rewards_paid.values()),
            )
        )

    def simulate_multi(
        self, instance: AuctionInstance, outcome: MultiTaskOutcome
    ) -> ExecutionResult:
        """Execute a cleared multi-task auction once.

        Every (winner, bundle task) attempt is an independent Bernoulli with
        the true per-task PoS.  A winner "succeeds" — for her EC contract —
        when any of her attempts does (§III-C); a task completes when any
        winner attempting it succeeds.

        Args:
            instance: The (true-type) instance the auction was cleared on.
            outcome: The cleared multi-task auction with its EC contracts.

        Returns:
            The realised :class:`ExecutionResult`, including the raw
            per-(winner, task) ``attempts`` that adaptive PoS learning
            consumes; also folded into the simulator's metrics registry
            when one was given.
        """
        task_completed: dict[int, bool] = {t.task_id: False for t in instance.tasks}
        user_success: dict[int, bool] = {}
        rewards_paid: dict[int, float] = {}
        utilities: dict[int, float] = {}
        attempts: dict[tuple[int, int], bool] = {}
        for uid in sorted(outcome.winners):
            user = instance.user_by_id(uid)
            succeeded_any = False
            for task_id in sorted(user.task_set):
                success = bool(self._rng.random() < user.pos[task_id])
                attempts[(uid, task_id)] = success
                if success:
                    succeeded_any = True
                    task_completed[task_id] = True
            user_success[uid] = succeeded_any
            if uid in outcome.rewards:
                contract = outcome.rewards[uid]
                rewards_paid[uid] = contract.realized(succeeded_any)
                utilities[uid] = contract.realized_utility(succeeded_any)
        return self._observe(
            ExecutionResult(
                user_success=user_success,
                task_completed=task_completed,
                rewards_paid=rewards_paid,
                utilities=utilities,
                platform_spend=sum(rewards_paid.values()),
                attempts=attempts,
            )
        )


def empirical_task_pos(
    instance: AuctionInstance,
    winners: frozenset[int],
    n_trials: int = 2000,
    seed: int = 0,
) -> dict[int, float]:
    """Monte-Carlo per-task completion probability for a given winner set.

    Cross-checks the analytic ``1 − Π(1 − p_i^j)``; agreement is asserted by
    the integration tests.

    Args:
        instance: The (true-type) multi-task instance.
        winners: The winner set whose execution is simulated.
        n_trials: Independent executions to average over.
        seed: RNG seed for the attempt draws.

    Returns:
        Mapping task id → fraction of trials in which the task completed
        (0.0 for tasks no winner attempts).

    Raises:
        ValidationError: If ``n_trials`` is not positive.
    """
    if n_trials <= 0:
        raise ValidationError(f"n_trials must be positive, got {n_trials!r}")
    rng = np.random.default_rng(seed)
    users = [u for u in instance.users if u.user_id in winners]
    completions = {t.task_id: 0 for t in instance.tasks}
    for task in instance.tasks:
        pos = np.array(
            [u.pos[task.task_id] for u in users if task.task_id in u.task_set]
        )
        if pos.size == 0:
            continue
        draws = rng.random((n_trials, pos.size)) < pos[None, :]
        completions[task.task_id] = int(draws.any(axis=1).sum())
    return {task_id: count / n_trials for task_id, count in completions.items()}
