"""Zero-copy array hand-off to pool workers via POSIX shared memory.

The experiment pool's unit of exchange used to be pickles: every array an
experiment wanted a worker to see was serialised into the task payload,
copied into the pipe, and deserialised on the far side — per chunk.  For
the streaming workload engine's million-user instances that triples peak
memory and puts the interconnect on the critical path.

:class:`SharedArrayPack` instead places all arrays in **one**
``multiprocessing.shared_memory`` segment.  The parent creates the pack
(one copy, into the segment); what crosses the process boundary is a
:class:`SharedArrayHandle` — a name plus per-array ``(dtype, shape,
offset)`` specs, a few hundred bytes no matter how large the arrays are.
Workers :meth:`~SharedArrayPack.attach` and get back numpy views onto the
same physical pages.

Lifecycle contract
------------------
* The **creator** owns the segment: call :meth:`~SharedArrayPack.dispose`
  (or use the pack as a context manager) once all consumers are done.
  POSIX keeps the pages alive until the last mapping disappears, so
  workers holding views are safe even after the parent unlinks.
* **Attached** packs never unlink or unregister: pool workers share the
  parent's resource tracker, so their attach-time registration is an
  idempotent set-add and the creator's single unlink/unregister settles
  the books (see :meth:`SharedArrayPack.attach`).
* Views are **read-mostly** by convention: workers slicing the same pack
  concurrently must not write to overlapping ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..core.errors import ValidationError

__all__ = ["SharedArrayHandle", "SharedArrayPack"]

# Per-array offsets are rounded up to this, so every view is aligned for
# any dtype the pack can hold.
_ALIGN = 64


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class SharedArrayHandle:
    """Picklable description of a pack: segment name + array layout."""

    shm_name: str
    #: ``(array name, dtype string, shape, byte offset)`` per array.
    specs: tuple[tuple[str, str, tuple[int, ...], int], ...]

    @property
    def total_bytes(self) -> int:
        """Payload bytes described by the handle (excluding tail padding)."""
        return sum(
            int(np.dtype(dt).itemsize) * int(np.prod(shape, dtype=np.int64))
            for _, dt, shape, _ in self.specs
        )


class SharedArrayPack:
    """A named set of numpy arrays living in one shared-memory segment."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        handle: SharedArrayHandle,
        owner: bool,
    ):
        self._shm = shm
        self.handle = handle
        self._owner = owner
        self.arrays: dict[str, np.ndarray] = {}
        for name, dtype, shape, offset in handle.specs:
            self.arrays[name] = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
            )

    # -- construction --------------------------------------------------- #

    @classmethod
    def create(cls, arrays: dict[str, np.ndarray]) -> "SharedArrayPack":
        """Copy ``arrays`` into a fresh segment and return the owning pack.

        Args:
            arrays: ``name -> array``.  Object dtypes are rejected (they
                hold pointers, which do not survive a process boundary);
                non-contiguous inputs are copied contiguously.
        """
        if not arrays:
            raise ValidationError("cannot create a shared pack from no arrays")
        specs: list[tuple[str, str, tuple[int, ...], int]] = []
        offset = 0
        contiguous: dict[str, np.ndarray] = {}
        for name, array in arrays.items():
            arr = np.ascontiguousarray(array)
            if arr.dtype.hasobject:
                raise ValidationError(
                    f"array {name!r} has object dtype; only plain scalar "
                    "dtypes can live in shared memory"
                )
            specs.append((name, arr.dtype.str, tuple(arr.shape), offset))
            offset = _aligned(offset + arr.nbytes)
            contiguous[name] = arr
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        handle = SharedArrayHandle(shm_name=shm.name, specs=tuple(specs))
        pack = cls(shm, handle, owner=True)
        for name, arr in contiguous.items():
            pack.arrays[name][...] = arr
        return pack

    @classmethod
    def attach(cls, handle: SharedArrayHandle) -> "SharedArrayPack":
        """Map an existing segment (typically inside a pool worker).

        Pool workers share the parent's resource tracker (its fd is
        inherited on fork and passed through spawn preparation), so the
        attach-time registration is an idempotent set-add on the name the
        creator already registered — the creator's
        :meth:`~SharedArrayPack.dispose` performs the one unlink and
        unregister.  Do **not** unregister here: with a shared tracker
        that would strip the creator's registration and make its own
        unlink-time unregister fail.
        """
        shm = shared_memory.SharedMemory(name=handle.shm_name)
        return cls(shm, handle, owner=False)

    # -- lifecycle ------------------------------------------------------- #

    @property
    def owner(self) -> bool:
        return self._owner

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        self.arrays.clear()
        self._shm.close()

    def dispose(self) -> None:
        """Close and, if this pack created the segment, unlink it."""
        self.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double dispose
                pass

    def __enter__(self) -> "SharedArrayPack":
        return self

    def __exit__(self, *exc_info) -> None:
        self.dispose()
