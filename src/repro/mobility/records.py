"""Trace record schema and CSV (de)serialisation.

The paper's dataset records, per event, the *taxi ID*, *time stamp* and
*location (longitude and latitude)* of picking up and dropping passengers.
:class:`TraceRecord` mirrors that schema exactly, so code written against
this module would work unchanged on the real Shanghai dataset (see DESIGN.md,
substitution 1).
"""

from __future__ import annotations

import csv
import enum
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from ..core.errors import ValidationError

__all__ = ["EventType", "TraceRecord", "write_trace_csv", "read_trace_csv"]


class EventType(str, enum.Enum):
    """What happened at the recorded point."""

    PICKUP = "pickup"
    DROPOFF = "dropoff"


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One taxi trace event: (taxi, time, lon/lat, pickup|dropoff)."""

    taxi_id: int
    timestamp: float
    lon: float
    lat: float
    event: EventType

    def __post_init__(self) -> None:
        if self.taxi_id < 0:
            raise ValidationError(f"taxi_id must be >= 0, got {self.taxi_id!r}")
        if self.timestamp < 0:
            raise ValidationError(f"timestamp must be >= 0, got {self.timestamp!r}")


_HEADER = ["taxi_id", "timestamp", "lon", "lat", "event"]


def write_trace_csv(records: Iterable[TraceRecord], path: str | Path) -> int:
    """Write records to a CSV file; returns the number written."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for record in records:
            writer.writerow(
                [
                    record.taxi_id,
                    f"{record.timestamp:.3f}",
                    f"{record.lon:.6f}",
                    f"{record.lat:.6f}",
                    record.event.value,
                ]
            )
            count += 1
    return count


def read_trace_csv(path: str | Path) -> Iterator[TraceRecord]:
    """Stream records back from a CSV file written by :func:`write_trace_csv`."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _HEADER:
            raise ValidationError(f"unexpected CSV header {header!r}; want {_HEADER!r}")
        for line_no, row in enumerate(reader, start=2):
            if len(row) != len(_HEADER):
                raise ValidationError(f"{path}:{line_no}: expected {len(_HEADER)} columns")
            yield TraceRecord(
                taxi_id=int(row[0]),
                timestamp=float(row[1]),
                lon=float(row[2]),
                lat=float(row[3]),
                event=EventType(row[4]),
            )
