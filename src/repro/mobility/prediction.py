"""Next-location prediction evaluation (paper, §IV-B, Figure 3).

The paper takes a snapshot of the trace, predicts for each taxi the ``m``
most likely next locations (``m`` from 3 to 15), and reports the fraction of
held-out moves whose true destination falls in the predicted set — reaching
roughly 0.9 at ``m = 9``.  :func:`prediction_accuracy` reproduces that
curve; :func:`predicted_pos_samples` collects the predicted-PoS values whose
distribution Figure 4 plots.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.errors import ValidationError
from ..core.kernels import resolve_workload_kernel
from .dataset import TransitionPair
from .markov import MarkovMobilityModel
from .markov_kernel import topm_hit_ranks

__all__ = ["prediction_accuracy", "predicted_pos_samples"]


def prediction_accuracy(
    model: MarkovMobilityModel,
    held_out: Sequence[TransitionPair],
    m_values: Sequence[int] = tuple(range(3, 16)),
    kernel: str | None = None,
) -> dict[int, float]:
    """Top-``m`` next-location accuracy over held-out transitions.

    Args:
        model: A fitted mobility model.
        held_out: Ground-truth (current, next) pairs from the test split.
        m_values: The prediction-set sizes to evaluate (paper: 3..15).
        kernel: ``"vectorized"`` ranks every pair's true next cell in one
            batched pass (:func:`repro.mobility.markov_kernel.
            topm_hit_ranks`); ``"reference"`` calls ``predict_top`` per
            pair.  ``None`` resolves through :func:`repro.core.kernels.
            resolve_workload_kernel`.  Identical results: the vectorized
            rank counts strictly-larger-probability cells plus
            equal-probability cells with smaller ids — the reference's
            ``(-p, cell)`` sort order — on bit-identical rows.

    Returns:
        Map ``m -> fraction of pairs whose next cell is in the top-m set``.
        Pairs for taxis without a fitted model are skipped.
    """
    if not held_out:
        raise ValidationError("held_out must be non-empty")
    usable = [p for p in held_out if p.taxi_id in set(model.taxi_ids)]
    if not usable:
        raise ValidationError("no held-out pair matches a fitted taxi model")
    for m in m_values:
        if m <= 0:
            raise ValidationError(f"m must be positive, got {m!r}")
    if resolve_workload_kernel(kernel) == "vectorized":
        counts = model.fleet_counts()
        rows = np.searchsorted(
            counts.taxi_ids, np.asarray([p.taxi_id for p in usable], dtype=np.int64)
        )
        ranks = topm_hit_ranks(
            counts,
            model.smoothing,
            rows,
            np.asarray([p.current_cell for p in usable], dtype=np.int64),
            np.asarray([p.next_cell for p in usable], dtype=np.int64),
        )
        return {m: int((ranks < m).sum()) / len(usable) for m in m_values}
    accuracy: dict[int, float] = {}
    max_m = max(m_values)
    # Rank once per pair at the largest m; smaller m are prefixes.
    ranked = [
        (pair, model.predict_top(pair.taxi_id, pair.current_cell, max_m))
        for pair in usable
    ]
    for m in m_values:
        hits = sum(1 for pair, top in ranked if pair.next_cell in top[:m])
        accuracy[m] = hits / len(usable)
    return accuracy


def predicted_pos_samples(
    model: MarkovMobilityModel,
    current_cells: dict[int, int] | None = None,
) -> list[float]:
    """All predicted PoS values across taxis (the population Figure 4 bins).

    Args:
        model: A fitted mobility model.
        current_cells: Optional map taxi -> current location; defaults to
            each taxi's most-visited location (a stand-in for "where the
            snapshot finds her").

    Returns:
        One predicted PoS per (taxi, candidate next location) pair.
    """
    samples: list[float] = []
    for taxi_id in model.taxi_ids:
        taxi_model = model.model_for(taxi_id)
        if current_cells is not None and taxi_id in current_cells:
            current = current_cells[taxi_id]
        else:
            visits = taxi_model.counts.sum(axis=1)
            current = taxi_model.locations[int(visits.argmax())]
        samples.extend(model.pos_profile(taxi_id, current).values())
    return samples
