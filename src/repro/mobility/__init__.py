"""Mobility substrate: city grid, taxi traces, and the Markov mobility model.

The paper's evaluation substrate — a Shanghai taxi GPS trace discretised to
a 2 km grid, with per-taxi Markov models learned from it.  The real dataset
is proprietary; :mod:`repro.mobility.synthetic` generates a calibrated
synthetic fleet with the same record schema (see DESIGN.md, substitution 1).
"""

from .analytics import (
    TraceSummary,
    cell_popularity,
    revisit_rate,
    support_size_distribution,
    trace_summary,
)
from .dataset import TraceDataset, TransitionPair, sequences_from_records, split_sequences
from .grid import SHANGHAI_BBOX, CityGrid
from .heatmap import SHADES, render_heatmap
from .markov import MarkovMobilityModel, Smoothing, TaxiModel
from .prediction import predicted_pos_samples, prediction_accuracy
from .records import EventType, TraceRecord, read_trace_csv, write_trace_csv
from .synthetic import FleetConfig, SyntheticTaxiFleet, TaxiGroundTruth

__all__ = [
    "CityGrid",
    "SHANGHAI_BBOX",
    "TraceRecord",
    "EventType",
    "read_trace_csv",
    "write_trace_csv",
    "FleetConfig",
    "SyntheticTaxiFleet",
    "TaxiGroundTruth",
    "MarkovMobilityModel",
    "TaxiModel",
    "Smoothing",
    "TraceDataset",
    "TransitionPair",
    "sequences_from_records",
    "split_sequences",
    "prediction_accuracy",
    "predicted_pos_samples",
    "TraceSummary",
    "trace_summary",
    "support_size_distribution",
    "cell_popularity",
    "revisit_rate",
    "render_heatmap",
    "SHADES",
]
