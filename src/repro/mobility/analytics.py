"""Trace analytics: the dataset statistics behind the calibration.

The synthetic fleet is calibrated against the paper's *learned-model*
statistics (DESIGN.md, substitution 1); this module computes the underlying
trace-level statistics so a calibration — or a real dataset, once plugged
in through the same :class:`~repro.mobility.records.TraceRecord` schema —
can be inspected and compared:

* :func:`trace_summary` — fleet-level counts and inter-event times;
* :func:`support_size_distribution` — how many distinct cells each taxi
  visits (the paper's "locations she often visits", ``l``);
* :func:`cell_popularity` — visits per cell, the hotspot structure that
  makes downtown auctions dense;
* :func:`revisit_rate` — fraction of moves returning to an already-visited
  cell, a quick proxy for how learnable a taxi's mobility is.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from ..core.errors import ValidationError
from .grid import CityGrid
from .records import TraceRecord

__all__ = [
    "TraceSummary",
    "trace_summary",
    "support_size_distribution",
    "cell_popularity",
    "revisit_rate",
]


@dataclass(frozen=True, slots=True)
class TraceSummary:
    """Fleet-level descriptive statistics of a trace."""

    n_records: int
    n_taxis: int
    events_per_taxi_mean: float
    duration_s: float
    mean_headway_s: float
    pickup_fraction: float


def trace_summary(records: list[TraceRecord]) -> TraceSummary:
    """Descriptive statistics of a raw trace (pre-gridding)."""
    if not records:
        raise ValidationError("empty trace")
    by_taxi: dict[int, list[float]] = defaultdict(list)
    pickups = 0
    for record in records:
        by_taxi[record.taxi_id].append(record.timestamp)
        if record.event.value == "pickup":
            pickups += 1
    headways = []
    for times in by_taxi.values():
        times.sort()
        headways.extend(np.diff(times))
    timestamps = [r.timestamp for r in records]
    return TraceSummary(
        n_records=len(records),
        n_taxis=len(by_taxi),
        events_per_taxi_mean=len(records) / len(by_taxi),
        duration_s=max(timestamps) - min(timestamps),
        mean_headway_s=float(np.mean(headways)) if headways else 0.0,
        pickup_fraction=pickups / len(records),
    )


def support_size_distribution(
    sequences: dict[int, list[int]]
) -> dict[int, int]:
    """Histogram of per-taxi support sizes: size -> #taxis."""
    if not sequences:
        raise ValidationError("no sequences")
    counter = Counter(len(set(seq)) for seq in sequences.values())
    return dict(sorted(counter.items()))


def cell_popularity(
    records: Iterable[TraceRecord], grid: CityGrid, top: int = 20
) -> list[tuple[int, int]]:
    """The ``top`` most-visited cells as (cell id, visit count)."""
    if top <= 0:
        raise ValidationError(f"top must be positive, got {top!r}")
    counter: Counter[int] = Counter()
    for record in records:
        counter[grid.cell_of(record.lon, record.lat)] += 1
    return counter.most_common(top)


def revisit_rate(sequences: dict[int, list[int]]) -> float:
    """Fraction of moves whose destination was already visited.

    High revisit rates mean a taxi's future is predictable from its past —
    the property the paper's Figure 3 accuracy depends on.
    """
    revisits = 0
    moves = 0
    for sequence in sequences.values():
        seen: set[int] = set()
        for index, cell in enumerate(sequence):
            if index > 0:
                moves += 1
                if cell in seen:
                    revisits += 1
            seen.add(cell)
    if moves == 0:
        raise ValidationError("no moves in any sequence")
    return revisits / moves
