"""ASCII heatmaps of grid-valued data (no plotting dependencies).

The repository ships without matplotlib, so the inspection tooling renders
straight to the terminal: cell popularity, per-cell achieved PoS, coverage
gaps — anything shaped "cell id → value" — as a character-shaded map of the
city grid.  Used by examples and handy in a REPL::

    from repro.mobility import CityGrid, cell_popularity, render_heatmap
    print(render_heatmap(CityGrid(), dict(cell_popularity(records, grid, 10_000))))
"""

from __future__ import annotations

from collections.abc import Mapping

from ..core.errors import ValidationError
from .grid import CityGrid

__all__ = ["render_heatmap", "SHADES"]

#: Intensity ramp from empty to maximal (index by scaled value).
SHADES = " .:-=+*#%@"


def render_heatmap(
    grid: CityGrid,
    values: Mapping[int, float],
    max_width: int = 80,
    legend: bool = True,
) -> str:
    """Render cell values as an ASCII map (north at the top).

    Args:
        grid: The city grid the cells index into.
        values: Map from cell id to a non-negative intensity.  Cells absent
            from the map render as blank.
        max_width: Downsample columns (taking block maxima) so the map fits
            a terminal of this width.
        legend: Append a min/max legend line.

    Returns:
        The multi-line ASCII rendering.
    """
    if not values:
        raise ValidationError("no values to render")
    for cell in values:
        if not (0 <= cell < grid.n_cells):
            raise ValidationError(f"cell {cell} outside the grid")
    peak = max(values.values())
    if peak < 0:
        raise ValidationError("intensities must be non-negative")

    # Downsample factor (block size) so the rendering fits max_width.
    block = max(1, -(-grid.n_cols // max_width))  # ceil division
    out_cols = -(-grid.n_cols // block)
    out_rows = -(-grid.n_rows // block)

    cells_by_block: dict[tuple[int, int], float] = {}
    for cell, value in values.items():
        row, col = grid.row_col(cell)
        key = (row // block, col // block)
        cells_by_block[key] = max(cells_by_block.get(key, 0.0), value)

    lines = []
    for out_row in range(out_rows - 1, -1, -1):  # north (max lat) first
        chars = []
        for out_col in range(out_cols):
            value = cells_by_block.get((out_row, out_col))
            if value is None or peak == 0:
                chars.append(SHADES[0])
            else:
                index = min(len(SHADES) - 1, int(value / peak * (len(SHADES) - 1) + 0.5))
                chars.append(SHADES[index])
        lines.append("".join(chars).rstrip())
    rendering = "\n".join(lines)
    if legend:
        rendering += (
            f"\n[{SHADES[1]}..{SHADES[-1]}] 0..{peak:g}"
            f"  ({grid.n_rows}x{grid.n_cols} cells, block={block})"
        )
    return rendering
