"""Trace dataset handling: records → per-taxi location sequences, splits.

Bridges the raw event stream (:mod:`repro.mobility.records`) and the Markov
model (:mod:`repro.mobility.markov`): events are mapped to grid cells,
ordered by time per taxi, and optionally split into a training prefix and a
held-out set of (current, next) transition pairs — the paper's "snapshot"
evaluation of prediction accuracy (§IV-B).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..core.errors import ValidationError
from .grid import CityGrid
from .records import TraceRecord

__all__ = ["TransitionPair", "sequences_from_records", "split_sequences", "TraceDataset"]


@dataclass(frozen=True, slots=True)
class TransitionPair:
    """A held-out observed transition, for prediction evaluation."""

    taxi_id: int
    current_cell: int
    next_cell: int


def sequences_from_records(
    records: Iterable[TraceRecord], grid: CityGrid
) -> dict[int, list[int]]:
    """Per-taxi time-ordered cell sequences.

    Consecutive duplicate cells are collapsed: staying put is not a
    transition the mobility model should count.
    """
    by_taxi: dict[int, list[tuple[float, int]]] = defaultdict(list)
    for record in records:
        cell = grid.cell_of(record.lon, record.lat)
        by_taxi[record.taxi_id].append((record.timestamp, cell))
    sequences: dict[int, list[int]] = {}
    for taxi_id, events in by_taxi.items():
        events.sort()
        cells: list[int] = []
        for _, cell in events:
            if not cells or cells[-1] != cell:
                cells.append(cell)
        sequences[taxi_id] = cells
    return sequences


def split_sequences(
    sequences: Mapping[int, list[int]], train_fraction: float = 0.8
) -> tuple[dict[int, list[int]], list[TransitionPair]]:
    """Split every sequence into a training prefix and held-out transitions.

    The split is temporal (prefix/suffix), matching how a deployed platform
    would train on history and predict the future.  Held-out pairs whose
    current cell never appears in training data are still included — the
    model must handle them (it falls back to a uniform guess).
    """
    if not (0.0 < train_fraction < 1.0):
        raise ValidationError(f"train_fraction must be in (0, 1), got {train_fraction!r}")
    train: dict[int, list[int]] = {}
    held_out: list[TransitionPair] = []
    for taxi_id, sequence in sequences.items():
        cut = max(2, int(len(sequence) * train_fraction))
        train[taxi_id] = sequence[:cut]
        tail = sequence[cut - 1 :]  # overlap one element so the first test pair
        for current, following in zip(tail, tail[1:]):  # starts where training ended
            held_out.append(TransitionPair(taxi_id, current, following))
    return train, held_out


@dataclass(frozen=True)
class TraceDataset:
    """A materialised dataset: sequences plus an optional held-out split."""

    sequences: dict[int, list[int]]
    train: dict[int, list[int]]
    held_out: tuple[TransitionPair, ...]

    @classmethod
    def from_records(
        cls,
        records: Iterable[TraceRecord],
        grid: CityGrid,
        train_fraction: float = 0.8,
    ) -> "TraceDataset":
        sequences = sequences_from_records(records, grid)
        train, held_out = split_sequences(sequences, train_fraction)
        return cls(sequences=sequences, train=train, held_out=tuple(held_out))

    @property
    def n_taxis(self) -> int:
        return len(self.sequences)

    @property
    def n_transitions(self) -> int:
        return sum(max(0, len(s) - 1) for s in self.sequences.values())
