"""Batched fleet-wide Markov kernels (the vectorized workload engine, layer 1).

The reference :class:`~repro.mobility.markov.MarkovMobilityModel` fits one
taxi at a time: a Python loop builds a ``locations`` tuple and a dense
``(l, l)`` count matrix per taxi, and every downstream consumer
(``transition_matrix``, ``reach_profile``, the workload generator's
candidate ranking) re-enters Python per taxi.  That is fine at 250 taxis
and hopeless at a million.

This module re-states the whole fleet as flat CSR-style arrays and runs
every stage batched:

* :func:`fit_fleet` — transition counting for *all* taxis in one pass:
  a ``lexsort`` + change-mask finds each taxi's sorted unique locations,
  a searchsorted over globally-ascending ``(taxi, cell)`` keys maps every
  observation to its local state index, and one ``bincount`` over
  ``sq_offset[taxi] + from*l + to`` produces exactly the integer counts
  the reference accumulates with ``counts[i, j] += 1.0``.
* :func:`fleet_profiles` — smoothing, the first-hit reach DP, snapshot
  positions and candidate ranking, batched over groups of taxis that
  share a support size ``l`` (no padding, so every float op is the same
  op the reference performs on a single ``(l, l)`` matrix).
* :func:`topm_hit_ranks` — the Figure-3 predictor's rank of the true
  next cell inside each held-out pair's one-step row, for the vectorized
  ``prediction_accuracy``.

Bit-identical parity contract
-----------------------------
Every float produced here must equal the reference bit-for-bit.  The
rules this file relies on (verified on this host, pinned by the parity
suites in ``tests/mobility`` and ``tests/perf``):

* numpy's pairwise summation tree depends only on the reduced-axis
  length, so ``block.sum(axis=2)`` on a ``(B, l, l)`` gather equals the
  reference's per-row ``counts.sum()``;
* batched ``np.matmul`` on ``(B, l, l)`` operands equals the per-slice
  2-D ``matmul`` the reference DP performs;
* ``hit.mean(axis=1)`` on the batch equals the reference's per-taxi
  ``hit.mean(axis=0)`` fallback;
* ``np.argsort(-vals, kind="stable")`` over ascending-cell rows equals
  ``sorted(items, key=lambda kv: (-kv[1], kv[0]))``.

Counts are integers and therefore exact by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from ..core.errors import ValidationError

__all__ = [
    "SequenceChunk",
    "FleetCounts",
    "FleetProfiles",
    "fit_fleet",
    "fleet_profiles",
    "topm_hit_ranks",
    "take_csr",
]

#: Elements per grouped gather sub-batch: bounds peak memory of the
#: ``(B, l, l)`` dense blocks (plus the DP temporaries) regardless of how
#: many taxis share a support size.
_GATHER_BUDGET = 1 << 24


def take_csr(
    values: np.ndarray, indptr: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gather CSR rows: concatenated ``values`` segments for ``rows``.

    Returns ``(new_values, new_indptr)``; segment order follows ``rows``.

    >>> v = np.array([10, 11, 20, 30, 31, 32])
    >>> ptr = np.array([0, 2, 3, 6])
    >>> out, optr = take_csr(v, ptr, np.array([2, 0]))
    >>> out.tolist(), optr.tolist()
    ([30, 31, 32, 10, 11], [0, 3, 5])
    """
    rows = np.asarray(rows, dtype=np.int64)
    starts = indptr[rows]
    lengths = indptr[rows + 1] - starts
    new_indptr = np.zeros(rows.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=new_indptr[1:])
    total = int(new_indptr[-1])
    if total == 0:
        return values[:0].copy(), new_indptr
    # flat[i] = starts[row_of(i)] + (i - new_indptr[row_of(i)])
    flat = np.arange(total, dtype=np.int64)
    flat += np.repeat(starts - new_indptr[:-1], lengths)
    return values[flat], new_indptr


@dataclass(frozen=True)
class SequenceChunk:
    """A batch of per-taxi location sequences as flat arrays.

    ``cells[indptr[i]:indptr[i+1]]`` is taxi ``taxi_ids[i]``'s
    time-ordered cell sequence.  This is the streaming wire format: a
    chunk is fitted, ranked and turned into bids without ever building
    per-taxi Python objects.
    """

    taxi_ids: np.ndarray
    cells: np.ndarray
    indptr: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "taxi_ids", np.asarray(self.taxi_ids, dtype=np.int64))
        object.__setattr__(self, "cells", np.asarray(self.cells, dtype=np.int64))
        object.__setattr__(self, "indptr", np.asarray(self.indptr, dtype=np.int64))
        if self.indptr.ndim != 1 or self.indptr.size != self.taxi_ids.size + 1:
            raise ValidationError("indptr must have one more entry than taxi_ids")
        if self.indptr[0] != 0 or bool((np.diff(self.indptr) < 0).any()):
            raise ValidationError("indptr must start at 0 and be non-decreasing")
        if int(self.cells.size) != int(self.indptr[-1]):
            raise ValidationError("cells length must equal indptr[-1]")

    @classmethod
    def from_mapping(cls, sequences: Mapping[int, Sequence[int]]) -> "SequenceChunk":
        """Build a chunk from the reference ``{taxi_id: sequence}`` mapping."""
        taxi_ids = np.fromiter((int(t) for t in sequences), dtype=np.int64, count=len(sequences))
        lengths = np.fromiter(
            (len(seq) for seq in sequences.values()), dtype=np.int64, count=len(sequences)
        )
        indptr = np.zeros(taxi_ids.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        # One fromiter over the chained sequences beats 10^5 tiny
        # asarray+concatenate segments by an order of magnitude.
        from itertools import chain

        cells = np.fromiter(
            chain.from_iterable(sequences.values()),
            dtype=np.int64,
            count=int(indptr[-1]),
        )
        return cls(taxi_ids=taxi_ids, cells=cells, indptr=indptr)

    @property
    def n_taxis(self) -> int:
        return int(self.taxi_ids.size)

    def sequence_of(self, row: int) -> np.ndarray:
        return self.cells[self.indptr[row] : self.indptr[row + 1]]


@dataclass(frozen=True)
class FleetCounts:
    """Every taxi's fitted transition counts, as one flat structure.

    Row ``i`` covers taxi ``taxi_ids[i]``; its sorted unique locations
    are ``loc_cells[loc_indptr[i]:loc_indptr[i+1]]`` and its dense
    ``(l, l)`` count matrix is
    ``counts_flat[sq_indptr[i]:sq_indptr[i+1]].reshape(l, l)`` — exactly
    the arrays a reference :class:`~repro.mobility.markov.TaxiModel`
    holds, concatenated.
    """

    taxi_ids: np.ndarray
    loc_indptr: np.ndarray
    loc_cells: np.ndarray
    sq_indptr: np.ndarray
    counts_flat: np.ndarray

    @property
    def n_taxis(self) -> int:
        return int(self.taxi_ids.size)

    @property
    def n_locations(self) -> np.ndarray:
        return np.diff(self.loc_indptr)

    def locations_of(self, row: int) -> np.ndarray:
        return self.loc_cells[self.loc_indptr[row] : self.loc_indptr[row + 1]]

    def counts_of(self, row: int) -> np.ndarray:
        l = int(self.loc_indptr[row + 1] - self.loc_indptr[row])
        return self.counts_flat[self.sq_indptr[row] : self.sq_indptr[row + 1]].reshape(l, l)

    @classmethod
    def empty(cls) -> "FleetCounts":
        zero = np.zeros(0, dtype=np.int64)
        one = np.zeros(1, dtype=np.int64)
        return cls(zero, one, zero, one, np.zeros(0, dtype=np.float64))

    @classmethod
    def from_models(cls, models: Mapping[int, object]) -> "FleetCounts":
        """Flatten fitted ``TaxiModel`` objects, rows sorted by taxi id."""
        taxi_ids = np.asarray(sorted(models), dtype=np.int64)
        if taxi_ids.size == 0:
            return cls.empty()
        ordered = [models[int(t)] for t in taxi_ids]
        lengths = np.asarray([m.n_locations for m in ordered], dtype=np.int64)
        loc_indptr = np.zeros(taxi_ids.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=loc_indptr[1:])
        sq_indptr = np.zeros(taxi_ids.size + 1, dtype=np.int64)
        np.cumsum(lengths * lengths, out=sq_indptr[1:])
        loc_cells = np.concatenate(
            [np.asarray(m.locations, dtype=np.int64) for m in ordered]
        )
        counts_flat = np.concatenate(
            [np.asarray(m.counts, dtype=np.float64).ravel() for m in ordered]
        )
        return cls(taxi_ids, loc_indptr, loc_cells, sq_indptr, counts_flat)

    def sorted_by_taxi(self) -> "FleetCounts":
        """The same counts with rows in ascending-taxi-id order."""
        if self.n_taxis <= 1 or bool((np.diff(self.taxi_ids) > 0).all()):
            return self
        order = np.argsort(self.taxi_ids, kind="stable")
        loc_cells, loc_indptr = take_csr(self.loc_cells, self.loc_indptr, order)
        counts_flat, sq_indptr = take_csr(self.counts_flat, self.sq_indptr, order)
        return FleetCounts(
            taxi_ids=self.taxi_ids[order],
            loc_indptr=loc_indptr,
            loc_cells=loc_cells,
            sq_indptr=sq_indptr,
            counts_flat=counts_flat,
        )


def fit_fleet(chunk: SequenceChunk) -> FleetCounts:
    """Count transitions for every taxi in one vectorized pass.

    Taxis with fewer than two observations are skipped (nothing to learn
    — same rule as the reference ``fit``); surviving rows keep the
    chunk's order.  Counts are exact integers, so parity with the
    reference's ``+= 1.0`` accumulation is by construction.
    """
    lengths = np.diff(chunk.indptr)
    keep = lengths >= 2
    taxi_ids = chunk.taxi_ids[keep]
    n = int(taxi_ids.size)
    if n == 0:
        return FleetCounts.empty()
    cells = chunk.cells
    if not bool(keep.all()):
        cells = cells[np.repeat(keep, lengths)]
    lengths = lengths[keep]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    taxi_of = np.repeat(np.arange(n, dtype=np.int64), lengths)

    cmin = int(cells.min())
    span = int(cells.max()) - cmin + 1
    if span > (2**62) // max(n, 1):
        raise ValidationError(
            f"cell-id range {span} too large to vectorize over {n} taxis"
        )
    shifted = cells - cmin

    # Per-taxi sorted unique locations via one lexsort + change mask.
    order = np.lexsort((shifted, taxi_of))
    s_taxi = taxi_of[order]
    s_cell = shifted[order]
    new = np.empty(order.size, dtype=bool)
    new[0] = True
    new[1:] = (s_taxi[1:] != s_taxi[:-1]) | (s_cell[1:] != s_cell[:-1])
    loc_shifted = s_cell[new]
    loc_taxi = s_taxi[new]
    l_per = np.bincount(loc_taxi, minlength=n)
    loc_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(l_per, out=loc_indptr[1:])

    # Local state index of every observation: the (taxi, cell) keys are
    # globally ascending, so one searchsorted resolves all of them.
    loc_keys = loc_taxi * span + loc_shifted
    local = np.searchsorted(loc_keys, taxi_of * span + shifted) - loc_indptr[taxi_of]

    # Transition pairs: every observation except each taxi's last.
    from_mask = np.ones(cells.size, dtype=bool)
    from_mask[indptr[1:] - 1] = False
    idx = np.nonzero(from_mask)[0]
    sq_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(l_per * l_per, out=sq_indptr[1:])
    trans_taxi = taxi_of[idx]
    keys = sq_indptr[trans_taxi] + local[idx] * l_per[trans_taxi] + local[idx + 1]
    counts_flat = np.bincount(keys, minlength=int(sq_indptr[-1])).astype(np.float64)

    return FleetCounts(
        taxi_ids=taxi_ids,
        loc_indptr=loc_indptr,
        loc_cells=loc_shifted + cmin,
        sq_indptr=sq_indptr,
        counts_flat=counts_flat,
    )


@dataclass(frozen=True)
class FleetProfiles:
    """Per-taxi snapshot position + ranked reach profiles, rows sorted by taxi id.

    ``reach`` aligns with ``loc_cells``/``loc_indptr`` (the clamped
    within-``horizon`` reach probability of every known location — the
    single-task path's fallback lookup).  ``ranked_*`` hold each taxi's
    candidate destinations sorted by ``(-reach, cell)`` and truncated to
    the generator's ``max(max_k, 20)`` window, exactly the reference
    generator's ``_ranked`` lists.
    """

    taxi_ids: np.ndarray
    current: np.ndarray
    loc_indptr: np.ndarray
    loc_cells: np.ndarray
    reach: np.ndarray
    ranked_indptr: np.ndarray
    ranked_cells: np.ndarray
    ranked_pos: np.ndarray
    smoothing: str
    horizon: int

    @property
    def n_taxis(self) -> int:
        return int(self.taxi_ids.size)

    def ranked_of(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        sl = slice(self.ranked_indptr[row], self.ranked_indptr[row + 1])
        return self.ranked_cells[sl], self.ranked_pos[sl]

    def reach_at_cell(self, cell: int) -> tuple[np.ndarray, np.ndarray]:
        """``(values, present)`` of one cell's reach across all taxis.

        ``values[i]`` is meaningful only where ``present[i]`` — i.e. where
        ``cell`` is among taxi ``i``'s known locations.
        """
        n = self.n_taxis
        if n == 0 or self.loc_cells.size == 0:
            return np.zeros(0, dtype=np.float64), np.zeros(0, dtype=bool)
        cmin = int(self.loc_cells.min())
        span = int(self.loc_cells.max()) - cmin + 1
        shifted = int(cell) - cmin
        if shifted < 0 or shifted >= span:
            return np.zeros(n, dtype=np.float64), np.zeros(n, dtype=bool)
        row_of_loc = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.loc_indptr))
        keys = row_of_loc * span + (self.loc_cells - cmin)
        queries = np.arange(n, dtype=np.int64) * span + shifted
        pos = np.searchsorted(keys, queries)
        pos_c = np.minimum(pos, keys.size - 1)
        present = keys[pos_c] == queries
        values = np.where(present, self.reach[pos_c], 0.0)
        return values, present

    def popular_cells(self, rows: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
        """``(cells, counts)`` sorted by ``(-count, cell)`` over ranked lists.

        Counting how many of the given taxis predict each cell — the
        reference generator's ``_popular_cells``, batched.
        """
        if rows is None:
            flat = self.ranked_cells
        else:
            flat, _ = take_csr(self.ranked_cells, self.ranked_indptr, rows)
        if flat.size == 0:
            zero = np.zeros(0, dtype=np.int64)
            return zero, zero
        cells, counts = np.unique(flat, return_counts=True)
        order = np.argsort(-counts, kind="stable")
        return cells[order], counts[order]


def _smoothed(block: np.ndarray, totals: np.ndarray, l: int, smoothing: str) -> np.ndarray:
    """Batched transition matrices from count blocks; one op per reference row."""
    if smoothing == "laplace":
        return (block + 1.0) / (totals + l)[:, :, None]
    if smoothing == "paper":
        return block / (totals + l)[:, :, None]
    # MLE: uniform rows where nothing was observed.
    zero = totals == 0.0
    denom = np.where(zero, 1.0, totals)
    mats = block / denom[:, :, None]
    if bool(zero.any()):
        mats[zero] = 1.0 / l
    return mats


def _reach(mats: np.ndarray, horizon: int) -> np.ndarray:
    """The reference first-hit DP, batched over the leading axis."""
    hit = mats.copy()
    for _ in range(horizon - 1):
        continuation = np.matmul(mats, hit)
        diag = np.diagonal(hit, axis1=1, axis2=2)
        correction = mats * diag[:, None, :]
        hit = mats + continuation - correction
    return hit


def _group_batches(l_per: np.ndarray, cost_per_row: np.ndarray) -> Iterator[np.ndarray]:
    """Row-index batches grouped by support size, bounded by the gather budget."""
    for l in np.unique(l_per):
        rows = np.nonzero(l_per == l)[0]
        batch = max(1, _GATHER_BUDGET // max(1, int(cost_per_row[rows[0]])))
        for start in range(0, rows.size, batch):
            yield rows[start : start + batch]


def fleet_profiles(
    counts: FleetCounts,
    smoothing: str,
    horizon: int,
    current_cells: Mapping[int, int] | None = None,
    max_keep: int | None = None,
) -> FleetProfiles:
    """Smooth, run the reach DP, pick snapshot positions and rank — batched.

    Bit-identical to calling the reference ``reach_profile`` +
    ``sorted(..., key=(-p, cell))`` per taxi: taxis are processed in
    groups that share a support size ``l``, so every float op acts on the
    same shapes the reference uses, just stacked.
    """
    if smoothing not in ("laplace", "paper", "mle"):
        raise ValidationError(f"unknown smoothing {smoothing!r}")
    if horizon <= 0:
        raise ValidationError(f"horizon must be positive, got {horizon!r}")
    counts = counts.sorted_by_taxi()
    n = counts.n_taxis
    l_per = counts.n_locations.astype(np.int64)
    keep_per = l_per if max_keep is None else np.minimum(l_per, int(max_keep))
    ranked_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(keep_per, out=ranked_indptr[1:])
    current = np.zeros(n, dtype=np.int64)
    reach_flat = np.zeros(counts.loc_cells.size, dtype=np.float64)
    ranked_cells = np.zeros(int(ranked_indptr[-1]), dtype=np.int64)
    ranked_pos = np.zeros(int(ranked_indptr[-1]), dtype=np.float64)
    if n == 0:
        return FleetProfiles(
            counts.taxi_ids, current, counts.loc_indptr, counts.loc_cells,
            reach_flat, ranked_indptr, ranked_cells, ranked_pos,
            smoothing, int(horizon),
        )

    has_given = np.zeros(n, dtype=bool)
    given_cell = np.zeros(n, dtype=np.int64)
    if current_cells:
        row_of = {int(t): i for i, t in enumerate(counts.taxi_ids.tolist())}
        for taxi_id, cell in current_cells.items():
            row = row_of.get(int(taxi_id))
            if row is not None:
                has_given[row] = True
                given_cell[row] = int(cell)

    for rows in _group_batches(l_per, l_per * l_per):
        l = int(l_per[rows[0]])
        B = rows.size
        ar = np.arange(B)
        block = counts.counts_flat[
            counts.sq_indptr[rows][:, None] + np.arange(l * l, dtype=np.int64)
        ].reshape(B, l, l)
        locs = counts.loc_cells[
            counts.loc_indptr[rows][:, None] + np.arange(l, dtype=np.int64)
        ]
        totals = block.sum(axis=2)
        mats = _smoothed(block, totals, l, smoothing)
        hit = _reach(mats, horizon)

        # Snapshot position: the most-visited location, unless given.
        cur_local = totals.argmax(axis=1)
        cur = locs[ar, cur_local]
        given = has_given[rows]
        if bool(given.any()):
            cur = cur.copy()
            cur[given] = given_cell[rows][given]
        # Locate the snapshot cell inside each (ascending, unique) row.
        pos = (locs < cur[:, None]).sum(axis=1)
        pos_c = np.minimum(pos, l - 1)
        present = (pos < l) & (locs[ar, pos_c] == cur)
        vals = hit[ar, pos_c]
        if not bool(present.all()):
            vals = np.where(present[:, None], vals, hit.mean(axis=1))
        vals = np.minimum(vals, 1.0)

        order = np.argsort(-vals, axis=1, kind="stable")
        r_cells = np.take_along_axis(locs, order, axis=1)
        r_pos = np.take_along_axis(vals, order, axis=1)
        k = int(keep_per[rows[0]])

        current[rows] = cur
        reach_flat[counts.loc_indptr[rows][:, None] + np.arange(l, dtype=np.int64)] = vals
        dest = ranked_indptr[rows][:, None] + np.arange(k, dtype=np.int64)
        ranked_cells[dest] = r_cells[:, :k]
        ranked_pos[dest] = r_pos[:, :k]

    return FleetProfiles(
        taxi_ids=counts.taxi_ids,
        current=current,
        loc_indptr=counts.loc_indptr,
        loc_cells=counts.loc_cells,
        reach=reach_flat,
        ranked_indptr=ranked_indptr,
        ranked_cells=ranked_cells,
        ranked_pos=ranked_pos,
        smoothing=smoothing,
        horizon=int(horizon),
    )


#: Rank assigned when the true next cell is not among a taxi's locations:
#: it can never appear in any top-m set.
_NEVER_HIT = np.int64(2**31)


def topm_hit_ranks(
    counts: FleetCounts,
    smoothing: str,
    rows: np.ndarray,
    cur_cells: np.ndarray,
    next_cells: np.ndarray,
) -> np.ndarray:
    """Rank of each pair's true next cell in its one-step prediction order.

    ``rank < m`` iff the reference ``predict_top(taxi, cur, m)`` would
    contain ``next`` — the rank counts cells with strictly larger
    probability plus equal-probability cells with a smaller id, matching
    the ``(-p, cell)`` sort exactly (float comparisons on bit-identical
    rows are exact).  Pairs whose next cell the taxi never visits get
    :data:`_NEVER_HIT`.
    """
    if smoothing not in ("laplace", "paper", "mle"):
        raise ValidationError(f"unknown smoothing {smoothing!r}")
    rows = np.asarray(rows, dtype=np.int64)
    cur_cells = np.asarray(cur_cells, dtype=np.int64)
    next_cells = np.asarray(next_cells, dtype=np.int64)
    out = np.zeros(rows.size, dtype=np.int64)
    if rows.size == 0:
        return out
    l_per = counts.n_locations.astype(np.int64)
    l_of_pair = l_per[rows]
    for pair_batch in _group_batches(l_of_pair, l_of_pair):
        l = int(l_of_pair[pair_batch[0]])
        P = pair_batch.size
        ar = np.arange(P)
        prows = rows[pair_batch]
        locs = counts.loc_cells[
            counts.loc_indptr[prows][:, None] + np.arange(l, dtype=np.int64)
        ]
        cur = cur_cells[pair_batch]
        nxt = next_cells[pair_batch]
        cpos = (locs < cur[:, None]).sum(axis=1)
        cpos_c = np.minimum(cpos, l - 1)
        cpresent = (cpos < l) & (locs[ar, cpos_c] == cur)
        npos = (locs < nxt[:, None]).sum(axis=1)
        npos_c = np.minimum(npos, l - 1)
        npresent = (npos < l) & (locs[ar, npos_c] == nxt)

        crow = counts.counts_flat[
            (counts.sq_indptr[prows] + cpos_c * l)[:, None] + np.arange(l, dtype=np.int64)
        ]
        totals = crow.sum(axis=1)
        if smoothing == "laplace":
            prob = (crow + 1.0) / (totals + l)[:, None]
        elif smoothing == "paper":
            prob = crow / (totals + l)[:, None]
        else:
            zero = totals == 0.0
            denom = np.where(zero, 1.0, totals)
            prob = crow / denom[:, None]
            if bool(zero.any()):
                prob[zero] = 1.0 / l
        # Unseen current cell: the reference falls back to uniform.
        if not bool(cpresent.all()):
            prob = np.where(cpresent[:, None], prob, 1.0 / l)

        p_next = prob[ar, npos_c]
        rank = (prob > p_next[:, None]).sum(axis=1)
        rank += ((prob == p_next[:, None]) & (locs < nxt[:, None])).sum(axis=1)
        rank = np.where(npresent, rank, _NEVER_HIT)
        out[pair_batch] = rank
    return out
