"""Markov mobility model with Laplace smoothing (paper, §IV-B).

The paper models each user's mobility as a first-order Markov process over
the locations she frequents, learns the transition matrix by maximum
likelihood from the trace, and smooths it for data sparsity:

    ``P_ij = x_ij / (x_i + l)``

where ``x_ij`` counts observed ``i → j`` transitions, ``x_i = Σ_k x_ik`` and
``l`` is the number of locations.  Note the paper's formula, taken literally,
leaves zero probability on unseen transitions (the add-one numerator of
standard Laplace smoothing is missing) and rows do not sum to one.  We
implement three variants:

* ``"laplace"`` (default) — standard add-one smoothing
  ``(x_ij + 1)/(x_i + l)``: proper distribution, no zero entries;
* ``"paper"`` — the paper's literal formula (kept for fidelity and compared
  in ``benchmarks/bench_ablation_smoothing.py``);
* ``"mle"`` — raw ``x_ij / x_i`` (uniform when a row has no observations).

The learned model supplies everything downstream: next-location prediction
(Figure 3), the predicted-PoS distribution (Figure 4), and the per-user PoS
profile the workload generator turns into auction bids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Mapping, Sequence

import numpy as np

from ..core.errors import ValidationError
from ..core.kernels import resolve_workload_kernel
from .markov_kernel import FleetCounts, SequenceChunk, fit_fleet

__all__ = ["Smoothing", "TaxiModel", "MarkovMobilityModel"]

Smoothing = Literal["laplace", "paper", "mle"]


@dataclass(frozen=True)
class TaxiModel:
    """One taxi's fitted model: visited locations and transition counts."""

    taxi_id: int
    locations: tuple[int, ...]
    counts: np.ndarray = field(repr=False)

    @property
    def n_locations(self) -> int:
        return len(self.locations)

    def index_of(self, cell: int) -> int | None:
        try:
            return self.locations.index(cell)
        except ValueError:
            return None


class MarkovMobilityModel:
    """Per-taxi first-order Markov models fitted from location sequences.

    Args:
        smoothing: Which estimator to use for transition probabilities (see
            module docstring).

    Fit with :meth:`fit` (or construct via :meth:`from_sequences`), then
    query :meth:`transition_probs`, :meth:`predict_top` and
    :meth:`pos_profile`.
    """

    def __init__(self, smoothing: Smoothing = "laplace"):
        if smoothing not in ("laplace", "paper", "mle"):
            raise ValidationError(f"unknown smoothing {smoothing!r}")
        self.smoothing: Smoothing = smoothing
        self._models: dict[int, TaxiModel] = {}
        self._fleet_cache: FleetCounts | None = None

    @classmethod
    def from_sequences(
        cls,
        sequences: Mapping[int, Sequence[int]],
        smoothing: Smoothing = "laplace",
        kernel: str | None = None,
    ) -> "MarkovMobilityModel":
        model = cls(smoothing=smoothing)
        model.fit(sequences, kernel=kernel)
        return model

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #

    def fit(
        self, sequences: Mapping[int, Sequence[int]], kernel: str | None = None
    ) -> "MarkovMobilityModel":
        """Fit one model per taxi from its time-ordered cell sequence.

        Args:
            sequences: ``taxi_id -> time-ordered cell sequence``.  Taxis
                with fewer than two observations are skipped.
            kernel: ``"vectorized"`` counts the whole fleet in one array
                pass (:func:`repro.mobility.markov_kernel.fit_fleet`);
                ``"reference"`` keeps the original per-taxi loop.  ``None``
                resolves through :func:`repro.core.kernels.
                resolve_workload_kernel`.  Both produce identical models —
                counts are integers, so parity is exact.
        """
        self._models = {}
        self._fleet_cache = None
        if resolve_workload_kernel(kernel) == "vectorized":
            fleet = fit_fleet(SequenceChunk.from_mapping(sequences))
            # The fitted arrays ARE the fleet-counts structure — cache them
            # (row-sorted) so fleet_counts() never re-packs 10^5 TaxiModels.
            self._fleet_cache = fleet.sorted_by_taxi()
            cells_list = fleet.loc_cells.tolist()
            loc_ptr = fleet.loc_indptr.tolist()
            sq_ptr = fleet.sq_indptr.tolist()
            counts_flat = fleet.counts_flat
            for row, taxi_id in enumerate(fleet.taxi_ids.tolist()):
                a, b = loc_ptr[row], loc_ptr[row + 1]
                l = b - a
                self._models[taxi_id] = TaxiModel(
                    taxi_id=taxi_id,
                    locations=tuple(cells_list[a:b]),
                    counts=counts_flat[sq_ptr[row] : sq_ptr[row + 1]]
                    .reshape(l, l)
                    .copy(),
                )
            return self
        for taxi_id, sequence in sequences.items():
            if len(sequence) < 2:
                continue  # nothing to learn from a single observation
            locations = tuple(sorted(set(sequence)))
            index = {cell: i for i, cell in enumerate(locations)}
            counts = np.zeros((len(locations), len(locations)))
            for current, following in zip(sequence, sequence[1:]):
                counts[index[current], index[following]] += 1.0
            self._models[taxi_id] = TaxiModel(
                taxi_id=taxi_id, locations=locations, counts=counts
            )
        return self

    def fleet_counts(self) -> FleetCounts:
        """The fitted fleet as one flat array structure, rows sorted by taxi id.

        Built lazily from the per-taxi models and cached; the batched
        profile/prediction kernels consume this instead of re-entering
        Python per taxi.
        """
        if self._fleet_cache is None:
            self._fleet_cache = FleetCounts.from_models(self._models)
        return self._fleet_cache

    @property
    def taxi_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._models))

    def model_for(self, taxi_id: int) -> TaxiModel:
        if taxi_id not in self._models:
            raise KeyError(f"no fitted model for taxi {taxi_id}")
        return self._models[taxi_id]

    def known_locations(self, taxi_id: int) -> tuple[int, ...]:
        return self.model_for(taxi_id).locations

    # ------------------------------------------------------------------ #
    # Probability estimates
    # ------------------------------------------------------------------ #

    def _row(self, model: TaxiModel, row_index: int) -> np.ndarray:
        counts = model.counts[row_index]
        total = counts.sum()
        l = model.n_locations
        if self.smoothing == "laplace":
            return (counts + 1.0) / (total + l)
        if self.smoothing == "paper":
            return counts / (total + l)
        # MLE: uniform when the row was never observed.
        if total == 0:
            return np.full(l, 1.0 / l)
        return counts / total

    def transition_matrix(self, taxi_id: int) -> np.ndarray:
        """The full smoothed transition matrix (rows = current location)."""
        model = self.model_for(taxi_id)
        return np.vstack([self._row(model, i) for i in range(model.n_locations)])

    def transition_probs(self, taxi_id: int, current_cell: int) -> dict[int, float]:
        """P(next = · | current), as a cell -> probability map.

        An unseen ``current_cell`` yields the uniform distribution over the
        taxi's known locations (we know nothing about where she goes next).
        """
        model = self.model_for(taxi_id)
        row_index = model.index_of(current_cell)
        if row_index is None:
            uniform = 1.0 / model.n_locations
            return {cell: uniform for cell in model.locations}
        row = self._row(model, row_index)
        return {cell: float(p) for cell, p in zip(model.locations, row)}

    def transition_prob(self, taxi_id: int, current_cell: int, next_cell: int) -> float:
        """Single transition probability (0 for locations the taxi never visits)."""
        return self.transition_probs(taxi_id, current_cell).get(next_cell, 0.0)

    # ------------------------------------------------------------------ #
    # Prediction / PoS
    # ------------------------------------------------------------------ #

    def predict_top(self, taxi_id: int, current_cell: int, m: int) -> list[int]:
        """The ``m`` most likely next locations (paper's Figure 3 predictor).

        Ties are broken by cell id for determinism.
        """
        if m <= 0:
            raise ValidationError(f"m must be positive, got {m!r}")
        probs = self.transition_probs(taxi_id, current_cell)
        ranked = sorted(probs.items(), key=lambda item: (-item[1], item[0]))
        return [cell for cell, _ in ranked[:m]]

    def pos_profile(self, taxi_id: int, current_cell: int) -> dict[int, float]:
        """The predicted PoS for every candidate task location.

        In opportunistic sensing the PoS of a task at cell ``c`` is the
        probability the taxi passes through ``c`` in the next time slot —
        exactly the transition probability (paper, §II).
        """
        return self.transition_probs(taxi_id, current_cell)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """The fitted model as a JSON-ready dict (counts, not probabilities).

        Counts are stored rather than probabilities so a reloaded model can
        switch smoothing estimators and keep absorbing new observations.
        """
        return {
            "schema": 1,
            "kind": "markov_mobility_model",
            "smoothing": self.smoothing,
            "taxis": {
                str(taxi_id): {
                    "locations": list(model.locations),
                    "counts": model.counts.tolist(),
                }
                for taxi_id, model in self._models.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MarkovMobilityModel":
        """Rebuild a fitted model saved by :meth:`to_dict`."""
        if payload.get("schema") != 1 or payload.get("kind") != "markov_mobility_model":
            raise ValidationError(
                f"unsupported model payload: schema={payload.get('schema')!r}, "
                f"kind={payload.get('kind')!r}"
            )
        model = cls(smoothing=payload["smoothing"])
        for taxi_key, data in payload["taxis"].items():
            locations = tuple(int(c) for c in data["locations"])
            counts = np.asarray(data["counts"], dtype=float)
            if counts.shape != (len(locations), len(locations)):
                raise ValidationError(
                    f"taxi {taxi_key}: counts shape {counts.shape} does not "
                    f"match {len(locations)} locations"
                )
            if (counts < 0).any():
                raise ValidationError(f"taxi {taxi_key}: negative counts")
            model._models[int(taxi_key)] = TaxiModel(
                taxi_id=int(taxi_key), locations=locations, counts=counts
            )
        return model

    def save(self, path) -> None:
        """Write the fitted model to a JSON file."""
        import json

        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle)

    @classmethod
    def load(cls, path) -> "MarkovMobilityModel":
        """Read a fitted model back from a JSON file."""
        import json

        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def reach_profile(
        self, taxi_id: int, current_cell: int, horizon: int
    ) -> dict[int, float]:
        """P(visit each location within ``horizon`` steps | current location).

        The multi-slot generalisation of :meth:`pos_profile`: a sensing
        campaign usually spans a time window, and the probability that an
        opportunistic user passes through a task's cell during the window is
        the chain's hitting probability within ``horizon`` steps.  With
        ``horizon=1`` this reduces exactly to the one-step profile.

        Computed by the standard first-hit dynamic program: for target ``j``,
        ``v_{t+1}(s) = P(s→j) + Σ_{s'≠j} P(s→s')·v_t(s')`` with ``v_0 = 0``.

        An unseen ``current_cell`` falls back to averaging the reach
        probabilities over all starting locations (mirroring the uniform
        fallback of :meth:`transition_probs`).
        """
        if horizon <= 0:
            raise ValidationError(f"horizon must be positive, got {horizon!r}")
        model = self.model_for(taxi_id)
        l = model.n_locations
        matrix = self.transition_matrix(taxi_id)
        # hit[t][s, j]: P(visit j within t steps from s).  Vectorised over j:
        # v_{t+1} = P @ v_t with column j's self-transition redirected so a
        # visit absorbs.  Equivalent formulation: v_{t+1} = P_col_j + P_noj v_t
        # done for all j at once by masking.
        hit = matrix.copy()  # t = 1: one-step probabilities
        for _ in range(horizon - 1):
            # For target j, transitions INTO j absorb: contribution P[s, j];
            # otherwise continue with v_t.  Column-wise:
            # v'[s, j] = P[s, j] + sum_{s' != j} P[s, s'] * v[s', j]
            continuation = matrix @ hit  # includes s' == j terms
            correction = matrix * np.diag(hit)[None, :]  # P[s, j] * v[j, j]
            hit = matrix + continuation - correction
        row_index = model.index_of(current_cell)
        if row_index is None:
            values = hit.mean(axis=0)
        else:
            values = hit[row_index]
        return {
            cell: float(min(1.0, values[k])) for k, cell in enumerate(model.locations)
        }
