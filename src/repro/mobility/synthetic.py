"""Synthetic Shanghai taxi fleet (DESIGN.md, substitution 1).

The paper evaluates on a proprietary January-2013 trace of 1,692 Shanghai
taxis.  This module generates a synthetic fleet with the same *observable*
structure:

* each taxi has a small set of frequently visited locations (grid cells)
  clustered around a home area and biased toward city-wide hotspots;
* movement between them follows a per-taxi ground-truth Markov chain whose
  rows are skewed (a few likely destinations, a long tail) — calibrated so a
  *learned* model reproduces the paper's Figure 3 (top-9 next-location
  accuracy ≈ 0.9) and Figure 4 (predicted PoS mass concentrated below 0.2);
* the emitted events carry the exact record schema of the real dataset
  (taxi id, timestamp, lon/lat, pickup/dropoff).

The ground-truth chains are retained on the fleet object so tests can
compare learned estimates against the truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.errors import ValidationError
from .grid import CityGrid
from .records import EventType, TraceRecord

__all__ = ["FleetConfig", "TaxiGroundTruth", "SyntheticTaxiFleet"]


@dataclass(frozen=True, slots=True)
class FleetConfig:
    """Knobs of the synthetic fleet generator.

    Defaults are the calibrated values used by the benchmark harness (see
    module docstring); the paper's fleet size is 1,692 taxis, which the
    experiment drivers scale down where the full population is unnecessary.

    Attributes:
        n_taxis: Fleet size.
        support_size_range: Min/max number of frequent locations per taxi
            (inclusive).
        home_radius_cells: Chebyshev radius around the home cell from which
            the support is drawn.
        n_hotspots: Number of city-wide attraction centres.
        hotspot_scale_km: Decay length of hotspot attraction.
        locality_scale_km: Decay length of the per-step movement kernel —
            taxis prefer nearby next locations.
        row_dirichlet: Dirichlet concentration of ground-truth transition
            rows; smaller values give more skewed (peaky) rows.
        events_per_taxi: Trace length (pickup+dropoff events) per taxi.
        mean_headway_s: Mean time between consecutive events.
        region_radius_cells: When set, taxi homes are confined to a
            neighborhood of this Chebyshev radius around the city centre —
            a *concentrated* fleet whose supports overlap heavily.  The
            single-task experiments need this: they recruit up to 100 users
            for one location, which requires many taxis able to reach it.
    """

    n_taxis: int = 200
    support_size_range: tuple[int, int] = (10, 16)
    home_radius_cells: int = 4
    n_hotspots: int = 25
    hotspot_scale_km: float = 6.0
    locality_scale_km: float = 5.0
    row_dirichlet: float = 0.55
    events_per_taxi: int = 400
    mean_headway_s: float = 1200.0
    region_radius_cells: int | None = None

    def __post_init__(self) -> None:
        low, high = self.support_size_range
        if not (2 <= low <= high):
            raise ValidationError(f"support_size_range must satisfy 2 <= low <= high: {self.support_size_range!r}")
        if self.n_taxis <= 0:
            raise ValidationError(f"n_taxis must be positive, got {self.n_taxis!r}")
        if self.events_per_taxi < 2:
            raise ValidationError("events_per_taxi must be at least 2")
        if self.row_dirichlet <= 0:
            raise ValidationError("row_dirichlet must be positive")


@dataclass(frozen=True)
class TaxiGroundTruth:
    """A taxi's true mobility law: its support cells and transition matrix."""

    taxi_id: int
    support: tuple[int, ...]
    transition_matrix: np.ndarray = field(repr=False)

    def next_distribution(self, current_cell: int) -> dict[int, float]:
        """True P(next location | current), as a cell -> probability map."""
        idx = self.support.index(current_cell)
        row = self.transition_matrix[idx]
        return {cell: float(p) for cell, p in zip(self.support, row)}


class SyntheticTaxiFleet:
    """Generates ground-truth taxi chains and synthetic trace records.

    Args:
        grid: The city grid locations live on.
        config: Generator knobs.
        seed: RNG seed — the fleet (chains *and* traces) is a deterministic
            function of (grid, config, seed).

    Usage::

        fleet = SyntheticTaxiFleet(CityGrid(), FleetConfig(n_taxis=100), seed=7)
        records = fleet.generate_records()
    """

    def __init__(self, grid: CityGrid, config: FleetConfig | None = None, seed: int = 0):
        self.grid = grid
        self.config = config or FleetConfig()
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._attraction = self._build_attraction(rng)
        self.ground_truth: dict[int, TaxiGroundTruth] = {}
        for taxi_id in range(self.config.n_taxis):
            self.ground_truth[taxi_id] = self._build_taxi(taxi_id, rng)

    # ------------------------------------------------------------------ #
    # Ground-truth construction
    # ------------------------------------------------------------------ #

    def _build_attraction(self, rng: np.random.Generator) -> np.ndarray:
        """City-wide attraction per cell: a mixture of hotspot kernels."""
        n = self.grid.n_cells
        hotspots = rng.choice(n, size=min(self.config.n_hotspots, n), replace=False)
        weights = rng.gamma(shape=2.0, scale=1.0, size=len(hotspots))
        rows, cols = np.divmod(np.arange(n), self.grid.n_cols)
        attraction = np.full(n, 0.05)
        for hotspot, weight in zip(hotspots, weights):
            h_row, h_col = divmod(int(hotspot), self.grid.n_cols)
            dist_km = self.grid.cell_km * np.hypot(rows - h_row, cols - h_col)
            attraction += weight * np.exp(-dist_km / self.config.hotspot_scale_km)
        return attraction

    def _home_cells(self) -> list[int]:
        """Cells taxi homes may be drawn from (whole city or the region)."""
        if self.config.region_radius_cells is None:
            return list(range(self.grid.n_cells))
        center_row = self.grid.n_rows // 2
        center_col = self.grid.n_cols // 2
        center = center_row * self.grid.n_cols + center_col
        return self.grid.neighborhood(center, self.config.region_radius_cells)

    def _build_taxi(self, taxi_id: int, rng: np.random.Generator) -> TaxiGroundTruth:
        home_cells = self._home_cells()
        weights = np.array([self._attraction[c] for c in home_cells])
        home = int(home_cells[int(rng.choice(len(home_cells), p=weights / weights.sum()))])
        neighborhood = self.grid.neighborhood(home, self.config.home_radius_cells)
        low, high = self.config.support_size_range
        size = min(int(rng.integers(low, high + 1)), len(neighborhood))
        local_attraction = np.array([self._attraction[c] for c in neighborhood])
        probs = local_attraction / local_attraction.sum()
        chosen = rng.choice(len(neighborhood), size=size, replace=False, p=probs)
        support = tuple(sorted(neighborhood[i] for i in chosen))

        l = len(support)
        matrix = np.empty((l, l))
        for i, from_cell in enumerate(support):
            # Locality kernel times a Dirichlet draw: nearby cells are more
            # likely, and the Dirichlet skews the row so a handful of
            # destinations carry most of the mass (Figure 3/4 calibration).
            dist = np.array([self.grid.distance_km(from_cell, to) for to in support])
            kernel = np.exp(-dist / self.config.locality_scale_km)
            random_part = rng.dirichlet(np.full(l, self.config.row_dirichlet))
            row = kernel * (random_part + 1e-4)
            matrix[i] = row / row.sum()
        return TaxiGroundTruth(taxi_id=taxi_id, support=support, transition_matrix=matrix)

    # ------------------------------------------------------------------ #
    # Trace generation
    # ------------------------------------------------------------------ #

    def walk(self, taxi_id: int, n_steps: int, rng: np.random.Generator) -> list[int]:
        """Sample a cell sequence of length ``n_steps`` from the true chain."""
        truth = self.ground_truth[taxi_id]
        l = len(truth.support)
        current = int(rng.integers(l))
        path = [truth.support[current]]
        for _ in range(n_steps - 1):
            current = int(rng.choice(l, p=truth.transition_matrix[current]))
            path.append(truth.support[current])
        return path

    def _jittered_point(self, cell: int, rng: np.random.Generator) -> tuple[float, float]:
        """A random point inside the cell (events are not at cell centres)."""
        lon, lat = self.grid.center_of(cell)
        half_lon = 0.45 * self.grid.cell_km / self.grid._km_per_deg_lon
        half_lat = 0.45 * self.grid.cell_km / 111.32
        lon = float(np.clip(lon + rng.uniform(-half_lon, half_lon), self.grid.lon_min, self.grid.lon_max))
        lat = float(np.clip(lat + rng.uniform(-half_lat, half_lat), self.grid.lat_min, self.grid.lat_max))
        return lon, lat

    def generate_records(self) -> list[TraceRecord]:
        """Emit the full fleet trace, time-ordered per taxi.

        Events alternate pickup/dropoff along each taxi's Markov walk, with
        exponential headways, mirroring the real dataset's structure.
        """
        records: list[TraceRecord] = []
        rng = np.random.default_rng(self.seed + 1)  # independent of chain construction
        for taxi_id in range(self.config.n_taxis):
            path = self.walk(taxi_id, self.config.events_per_taxi, rng)
            time = float(rng.uniform(0, self.config.mean_headway_s))
            for step, cell in enumerate(path):
                lon, lat = self._jittered_point(cell, rng)
                event = EventType.PICKUP if step % 2 == 0 else EventType.DROPOFF
                records.append(
                    TraceRecord(taxi_id=taxi_id, timestamp=time, lon=lon, lat=lat, event=event)
                )
                time += float(rng.exponential(self.config.mean_headway_s))
        return records
