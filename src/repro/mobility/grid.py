"""Geographic grid over the city (paper, §IV-A).

The paper divides the map of Shanghai into 2 km × 2 km grid cells, each cell
representing one *location*; a sensing task is attached to a cell, and a
taxi can perform tasks at the cells where it picks up or drops passengers.

:class:`CityGrid` implements that discretisation with an equirectangular
approximation (exact enough at city scale: the error across Shanghai's ~80 km
extent is far below a cell size).  Cells are indexed row-major by a single
integer, which is what every other module uses as a *location id*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import ValidationError

__all__ = ["CityGrid", "SHANGHAI_BBOX"]

#: Approximate bounding box of urban Shanghai (lon_min, lat_min, lon_max, lat_max).
SHANGHAI_BBOX = (121.0, 30.9, 121.9, 31.5)

#: Kilometres per degree of latitude (WGS-84 mean).
_KM_PER_DEG_LAT = 111.32


@dataclass(frozen=True)
class CityGrid:
    """A rectangular grid of square cells over a lon/lat bounding box.

    Args:
        lon_min, lat_min, lon_max, lat_max: Bounding box in degrees.
        cell_km: Cell edge length in kilometres (paper: 2 km).

    Cell ids are row-major: ``cell = row * n_cols + col`` with row 0 at the
    southern edge.
    """

    lon_min: float = SHANGHAI_BBOX[0]
    lat_min: float = SHANGHAI_BBOX[1]
    lon_max: float = SHANGHAI_BBOX[2]
    lat_max: float = SHANGHAI_BBOX[3]
    cell_km: float = 2.0

    def __post_init__(self) -> None:
        if self.lon_min >= self.lon_max or self.lat_min >= self.lat_max:
            raise ValidationError("bounding box is empty or inverted")
        if self.cell_km <= 0:
            raise ValidationError(f"cell_km must be positive, got {self.cell_km!r}")

    @property
    def _km_per_deg_lon(self) -> float:
        mid_lat = 0.5 * (self.lat_min + self.lat_max)
        return _KM_PER_DEG_LAT * math.cos(math.radians(mid_lat))

    @property
    def n_cols(self) -> int:
        width_km = (self.lon_max - self.lon_min) * self._km_per_deg_lon
        return max(1, math.ceil(width_km / self.cell_km))

    @property
    def n_rows(self) -> int:
        height_km = (self.lat_max - self.lat_min) * _KM_PER_DEG_LAT
        return max(1, math.ceil(height_km / self.cell_km))

    @property
    def n_cells(self) -> int:
        return self.n_cols * self.n_rows

    def contains(self, lon: float, lat: float) -> bool:
        return self.lon_min <= lon <= self.lon_max and self.lat_min <= lat <= self.lat_max

    def cell_of(self, lon: float, lat: float) -> int:
        """Map a coordinate to its cell id; raises for out-of-box points."""
        if not self.contains(lon, lat):
            raise ValidationError(f"point ({lon}, {lat}) outside the grid bounding box")
        col = int((lon - self.lon_min) * self._km_per_deg_lon / self.cell_km)
        row = int((lat - self.lat_min) * _KM_PER_DEG_LAT / self.cell_km)
        col = min(col, self.n_cols - 1)  # points exactly on the max edge
        row = min(row, self.n_rows - 1)
        return row * self.n_cols + col

    def _check_cell(self, cell: int) -> None:
        if not (0 <= cell < self.n_cells):
            raise ValidationError(f"cell {cell} out of range [0, {self.n_cells})")

    def row_col(self, cell: int) -> tuple[int, int]:
        self._check_cell(cell)
        return divmod(cell, self.n_cols)

    def center_of(self, cell: int) -> tuple[float, float]:
        """(lon, lat) of a cell's centre."""
        row, col = self.row_col(cell)
        lon = self.lon_min + (col + 0.5) * self.cell_km / self._km_per_deg_lon
        lat = self.lat_min + (row + 0.5) * self.cell_km / _KM_PER_DEG_LAT
        return (min(lon, self.lon_max), min(lat, self.lat_max))

    def distance_km(self, cell_a: int, cell_b: int) -> float:
        """Euclidean distance between cell centres, in kilometres."""
        row_a, col_a = self.row_col(cell_a)
        row_b, col_b = self.row_col(cell_b)
        return self.cell_km * math.hypot(row_a - row_b, col_a - col_b)

    def neighborhood(self, cell: int, radius_cells: int) -> list[int]:
        """Cell ids within a square Chebyshev radius (including ``cell``)."""
        if radius_cells < 0:
            raise ValidationError(f"radius must be >= 0, got {radius_cells!r}")
        row, col = self.row_col(cell)
        cells = []
        for dr in range(-radius_cells, radius_cells + 1):
            r = row + dr
            if not (0 <= r < self.n_rows):
                continue
            for dc in range(-radius_cells, radius_cells + 1):
                c = col + dc
                if 0 <= c < self.n_cols:
                    cells.append(r * self.n_cols + c)
        return cells
